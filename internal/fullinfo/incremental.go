package fullinfo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is the resumable form of Run. Where Run rebuilds the whole
// admissible-history tree for every horizon, an Engine keeps the
// interner and the leaf frontier alive between calls: the frontier at
// horizon r is exactly the node set that horizon r+1 grows from, so
// Extend performs one round of growth plus one leaf scan instead of a
// from-scratch walk. MinRounds-style searches (solvable at 0? at 1? …)
// become linear in the final tree instead of quadratic in its levels.
//
// The frontier is hash-consed per Options.Dedup: nodes with identical
// (state, inputs, views) collapse into one configuration carrying an
// int64 multiplicity, so Configs stays exact while the live set holds
// only distinct configurations. Soundness: two such nodes generate
// identical subtrees and leaf cliques, so collapsing them changes no
// component structure and scales Configs by the recorded multiplicity.
//
// Options contract (enforced by TestEngineOptionsContract):
//
//   - Parallel and Workers are honored: frontier growth and the leaf
//     scan run on chunked workers with worker-forked interners once the
//     frontier is large enough to amortize the forks (below
//     parMinFrontier nodes each round falls back to the sequential
//     path, whose results are bit-identical).
//   - EarlyExit truncates only the leaf scan (never frontier growth,
//     which later rounds depend on), so Solvable stays exact while
//     unsolvable horizons are abandoned at the first mixed component.
//   - SplitDepth is ignored: the engine has no split phase — every
//     round is already a frontier sweep. This is a tuning knob whose
//     silent irrelevance is harmless.
//   - BuildGraph is not supported: graph retention needs the
//     from-scratch walk. NewEngine with BuildGraph set returns an
//     engine whose every call fails with ErrEngineBuildGraph rather
//     than silently dropping the request.
//   - Observer receives one Stats snapshot per Extend/ExtendTo call.
//
// An Engine is not safe for concurrent use. After a Stepper panic the
// engine is poisoned and every later call returns the same error; after
// a context cancellation the engine is left at its previous horizon and
// the call may simply be retried.
type Engine struct {
	st  Stepper
	opt Options
	// sctx wraps the root interner. It runs with the creation log off
	// (nothing absorbs *into* a child), shaving an append per new view;
	// worker forks taken from it log as usual.
	sctx *Ctx

	n, na, all1 int
	workers     int
	horizon     int

	// Frontier at the current horizon, parallel slices: automaton
	// state, input-assignment bitmask, and n flat view ids per node.
	// mults is nil exactly when every node has multiplicity 1 (the
	// common, history-injective case) — it materializes on the first
	// hash-cons collapse and stays live from then on.
	states []int
	inputs []int32
	views  []int
	mults  []int64

	// Double buffers: grow builds the next frontier in the sp* slices
	// and swaps, so steady-state rounds allocate only on high-water
	// growth.
	spStates []int
	spInputs []int32
	spViews  []int
	spMults  []int64
	growBuf  []int

	dt dedupTable
	// cleanRounds counts consecutive dedup'd rounds without a single
	// collapse; DedupAuto stops probing at dedupAutoPatience.
	cleanRounds int
	// lastNodes/lastChildren record the previous round's fan-out so the
	// next round's buffers can be presized (killing append-doubling
	// copies on geometric frontiers).
	lastNodes    int
	lastChildren int

	// Leaf-scan scratch, reused across rounds: a union-find plus a
	// dense (view, process) → vertex table (frontier view ids are
	// interner-dense; +3 covers the sentinels down to InitView(1) = -3).
	uf   compUF
	vert []int32

	// sym is the live symbolic backend, when backend selection picked
	// it. While non-nil, the enumerating frontier above stays parked at
	// the horizon-0 roots; on fragmentation sym is dropped and the
	// enumerating rounds replay from there. pendingSymFallback is 1
	// when BackendSymbolic was requested but no symbolic engine could
	// be built — reported on the next ExtendTo snapshot.
	sym                *symEngine
	pendingSymFallback int

	// scr is the arena this engine borrowed its storage from, when
	// Options.Scratch engaged; Release hands the storage back.
	scr *Scratch

	err error
}

// ErrEngineBuildGraph is returned by every call on an Engine built with
// Options.BuildGraph: the incremental frontier never materializes the
// merged graph, so the option cannot be honored. Use Run or RunChecked.
var ErrEngineBuildGraph = errors.New(
	"fullinfo: Engine does not support Options.BuildGraph; use Run or RunChecked")

// ctx poll strides: how many nodes are processed between context
// checks while growing the frontier and while scanning leaves.
const (
	growPollStride = 1024
	scanPollStride = 4096
)

// parMinFrontier is the frontier size below which a round runs
// sequentially even when Options.Parallel is set: forking and absorbing
// per-worker interners only pays for itself on bulk rounds.
const parMinFrontier = 4096

// NewEngine returns an engine positioned at horizon 0 (the frontier is
// the 2^n input-assignment roots, or empty when the Stepper admits no
// history at all).
func NewEngine(st Stepper, opt Options) *Engine {
	n := st.NumProcs()
	workers := 1
	if opt.Parallel {
		workers = opt.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	e := &Engine{
		st:      st,
		opt:     opt,
		n:       n,
		na:      st.NumActions(),
		all1:    1<<n - 1,
		workers: workers,
	}
	if scr := opt.Scratch; !opt.BuildGraph && scr.acquire() {
		// Borrow the arena's storage; Release hands it back grown.
		e.scr = scr
		e.sctx = scr.rootCtxFor(false)
		e.states = scr.states[:0]
		e.inputs = scr.inputs[:0]
		e.views = scr.views[:0]
		e.spStates = scr.spStates[:0]
		e.spInputs = scr.spInputs[:0]
		e.spViews = scr.spViews[:0]
		e.spMults = scr.spMults[:0]
		e.dt = scr.dt
		e.uf = scr.uf
		e.uf.reset()
		e.vert = scr.vert
		e.growBuf = sliceLen(scr.growBuf, n)
	}
	if e.sctx == nil {
		e.sctx = &Ctx{In: newInterner(nil, false)}
	}
	if e.growBuf == nil {
		e.growBuf = make([]int, n)
	}
	if opt.BuildGraph {
		e.err = ErrEngineBuildGraph
		return e
	}
	if sym := symEngineFor(st, opt); sym != nil {
		e.sym = sym
	} else if opt.Backend == BackendSymbolic {
		e.pendingSymFallback = 1
	}
	if start, ok := st.Root(); ok {
		for inputs := 0; inputs < 1<<n; inputs++ {
			e.states = append(e.states, start)
			e.inputs = append(e.inputs, int32(inputs))
			for i := 0; i < n; i++ {
				e.views = append(e.views, InitView((inputs>>i)&1))
			}
		}
	}
	return e
}

// Release hands the engine's borrowed arena storage (with any growth)
// back to the Scratch it was built with, and is a no-op otherwise. The
// engine must not be used after Release. Idempotent.
func (e *Engine) Release() {
	s := e.scr
	if s == nil {
		return
	}
	e.scr = nil
	s.states, s.spStates = e.states, e.spStates
	s.inputs, s.spInputs = e.inputs, e.spInputs
	s.views, s.spViews = e.views, e.spViews
	s.spMults = e.spMults
	if e.mults != nil {
		s.mults = e.mults
	}
	s.growBuf = e.growBuf
	s.dt = e.dt
	s.uf = e.uf
	s.vert = e.vert
	s.release()
	e.err = errEngineReleased
}

// errEngineReleased poisons an engine whose arena went back to its
// Scratch: any later call would read recycled storage.
var errEngineReleased = errors.New("fullinfo: Engine used after Release")

// Horizon returns the round horizon of the live frontier.
func (e *Engine) Horizon() int {
	if e.sym != nil {
		return e.sym.depth
	}
	return e.horizon
}

// FrontierLen returns the number of live (distinct) frontier nodes —
// (state, interval) pairs while the symbolic backend is live.
func (e *Engine) FrontierLen() int {
	if e.sym != nil {
		return e.sym.intervals
	}
	return len(e.states)
}

// mult returns frontier node i's multiplicity.
func (e *Engine) mult(i int) int64 {
	if e.mults == nil {
		return 1
	}
	return e.mults[i]
}

// dedupOn reports whether the next round should hash-cons its frontier.
func (e *Engine) dedupOn() bool {
	switch e.opt.Dedup {
	case DedupOn:
		return true
	case DedupOff:
		return false
	default:
		return e.cleanRounds < dedupAutoPatience
	}
}

// growStats accumulates per-ExtendTo instrumentation across rounds.
type growStats struct {
	raw, distinct int64
	forks         int
	absorbed      int
}

// reuse returns s emptied, reallocating only when capacity c is not
// already available.
func reuse[T any](s []T, c int) []T {
	if cap(s) < c {
		return make([]T, 0, c)
	}
	return s[:0]
}

// childEstimate predicts the next frontier's node count from the
// previous round's fan-out (falling back to the na upper bound), so
// grow can presize its buffers.
func (e *Engine) childEstimate(nodes int) int {
	worst := nodes * e.na
	if e.lastNodes == 0 {
		return worst
	}
	est := int(int64(nodes)*int64(e.lastChildren)/int64(e.lastNodes)) + 64
	return min(est, worst)
}

// Extend grows the frontier by one round and analyzes the new horizon.
func (e *Engine) Extend(ctx context.Context) (Result, error) {
	return e.ExtendTo(ctx, e.horizon+1)
}

// ExtendTo grows the frontier to horizon r (which must not be below the
// current horizon; r equal to the current horizon just re-scans, which
// is how horizon 0 is analyzed) and returns the analysis there.
func (e *Engine) ExtendTo(ctx context.Context, r int) (Result, error) {
	if e.err != nil {
		return Result{}, e.err
	}
	if h := e.Horizon(); r < h {
		return Result{}, fmt.Errorf("fullinfo: ExtendTo(%d) below current horizon %d", r, h)
	}
	start := time.Now()
	symFB := e.pendingSymFallback
	e.pendingSymFallback = 0
	if e.sym != nil {
		symRounds := r - e.sym.depth
		res, err := e.sym.extendTo(ctx, r)
		if err == nil {
			if e.opt.Observer != nil {
				e.opt.Observer(e.sym.stats(res, symRounds, start, symFB))
			}
			return res, nil
		}
		if !errors.Is(err, errSymbolicFragmented) {
			// Context cancellation: the symbolic frontier is intact at
			// its previous depth, so the call may simply be retried.
			e.pendingSymFallback = symFB
			return Result{}, err
		}
		// The interval frontier fragmented. Drop the symbolic engine and
		// replay enumerating rounds from the parked horizon-0 roots —
		// the one-time cost of reaching r this way is what the dedup
		// engine would have paid anyway, and every later ExtendTo grows
		// incrementally as usual.
		e.sym = nil
		symFB++
	}
	startIDs := e.sctx.In.NumIDs()
	rounds := r - e.horizon
	var gs growStats
	var sink leafSink
	fused := false
	for e.horizon < r {
		last := e.horizon == r-1
		if e.workers > 1 && len(e.states) >= parMinFrontier {
			if err := e.growPar(ctx, &gs); err != nil {
				return Result{}, err
			}
			continue
		}
		// Sequential rounds fuse the final round's leaf scan into the
		// growth sweep: each distinct configuration streams into the
		// union-find the moment it is appended, saving a full re-read
		// of the new frontier.
		var s *leafSink
		if last {
			sink.reset(e, e.sctx.In.NumIDs())
			s = &sink
			fused = true
		}
		if err := e.grow(ctx, s, &gs); err != nil {
			return Result{}, err
		}
	}
	var res Result
	if fused {
		res = sink.result()
	} else {
		var err error
		res, err = e.scan(ctx)
		if err != nil {
			return Result{}, err
		}
	}
	if e.opt.Observer != nil {
		e.opt.Observer(Stats{
			Horizon:           e.horizon,
			Rounds:            rounds,
			Configs:           res.Configs,
			Vertices:          res.Vertices,
			Components:        res.Components,
			MixedComponents:   res.MixedComponents,
			Merges:            res.Vertices - res.Components,
			ViewsInterned:     e.sctx.In.NumIDs(),
			NewViews:          e.sctx.In.NumIDs() - startIDs,
			Workers:           e.workers,
			WorkerForks:       gs.forks,
			Absorbed:          gs.absorbed,
			Subtrees:          len(e.states),
			FrontierRaw:       gs.raw,
			FrontierDistinct:  gs.distinct,
			SymbolicFallbacks: symFB,
			WallNanos:         time.Since(start).Nanoseconds(),
		})
	}
	return res, nil
}

// leafSink streams leaf configurations into the engine's scan scratch
// (union-find plus dense vertex table). It backs both the fused
// grow-and-scan sweep and the standalone re-scan. The vertex table is
// a window over view ids [base, NumIDs): the repository's steppers are
// generational — every view in a frontier was interned while growing
// that frontier — so basing the window at the round's first id (or the
// frontier's minimum) keeps the table proportional to one round, not
// to the whole interner history.
type leafSink struct {
	e       *Engine
	base    int // lowest view id the dense window covers
	configs int64
	// stopped is set once EarlyExit observes a mixed component: the
	// sink goes quiet (counts freeze, Exhaustive=false) while frontier
	// growth, which later rounds depend on, continues.
	stopped bool
}

func (s *leafSink) reset(e *Engine, base int) {
	s.e = e
	s.base = base
	s.configs = 0
	s.stopped = false
	e.uf.reset()
	need := (e.sctx.In.NumIDs() - base) * e.n
	if need <= cap(e.vert) {
		// Clear the full capacity so later in-place extensions (views
		// interned mid-sweep) expose zeroed, not stale, slots.
		e.vert = e.vert[:cap(e.vert)]
		clear(e.vert)
		e.vert = e.vert[:need]
	} else {
		e.vert = make([]int32, need)
	}
}

// vertex resolves (proc, view) to a union-find index through the dense
// window, extending it when the interner has grown past its high-water
// and rebasing in the (never-for-our-steppers) case of a view below
// the window.
func (s *leafSink) vertex(proc, view int) int32 {
	e := s.e
	if view < s.base {
		s.rebase()
	}
	idx := (view-s.base)*e.n + proc
	if idx >= len(e.vert) {
		need := (e.sctx.In.NumIDs() - s.base) * e.n
		if need <= cap(e.vert) {
			e.vert = e.vert[:need] // zeroed by reset
		} else {
			g := make([]int32, need+need/2)
			copy(g, e.vert)
			e.vert = g[:need]
		}
	}
	slot := &e.vert[idx]
	if *slot == 0 {
		*slot = e.uf.add() + 1
	}
	return *slot - 1
}

// rebase widens the window down to the sentinel floor (-3, below every
// valid view id): a stepper handed the sink a view older than the
// window base, which the generational steppers never do but the
// Stepper contract allows. Runs at most once per scan.
func (s *leafSink) rebase() {
	e := s.e
	const floor = -3
	shift := (s.base - floor) * e.n
	g := make([]int32, (e.sctx.In.NumIDs()-floor)*e.n)
	copy(g[shift:], e.vert)
	e.vert = g
	s.base = floor
}

// frontierBase returns the smallest view id in the live frontier (the
// scan window base), or the sentinel floor for an empty frontier.
func (e *Engine) frontierBase() int {
	base := e.sctx.In.NumIDs()
	for _, v := range e.views {
		if v < base {
			base = v
		}
	}
	if len(e.views) == 0 {
		base = -3
	}
	return base
}

// leaf streams one distinct leaf configuration: its vertices join one
// component, which inherits the unanimity flags of the input mask.
func (s *leafSink) leaf(vs []int, inputs int32) {
	if s.stopped {
		return
	}
	uf := &s.e.uf
	root := uf.find(s.vertex(0, vs[0]))
	for p := 1; p < len(vs); p++ {
		root = uf.union(root, s.vertex(p, vs[p]))
	}
	switch inputs {
	case 0:
		uf.mark(root, flagHas0)
	case int32(s.e.all1):
		uf.mark(root, flagHas1)
	}
	if s.e.opt.EarlyExit && uf.mixed > 0 {
		s.stopped = true
	}
}

// count adds raw configurations to the tally. Kept separate from leaf
// because under dedup a configuration's structure streams once while
// its multiplicity keeps growing.
func (s *leafSink) count(mult int64) {
	if !s.stopped {
		s.configs += mult
	}
}

func (s *leafSink) result() Result {
	uf := &s.e.uf
	return Result{
		Configs:         s.configs,
		Vertices:        len(uf.parent),
		Components:      uf.roots,
		MixedComponents: uf.mixed,
		Solvable:        uf.mixed == 0,
		Exhaustive:      !s.stopped,
	}
}

// grow advances the frontier one round on the calling goroutine,
// hash-consing per the dedup policy and, when sink is non-nil, fusing
// the leaf scan into the sweep. The new frontier is committed only on
// success: a context cancellation leaves the engine retryable at its
// previous horizon, while a Stepper panic poisons it.
func (e *Engine) grow(ctx context.Context, sink *leafSink, gs *growStats) error {
	n, na := e.n, e.na
	nodes := len(e.states)
	dedup := e.dedupOn()
	if dedup {
		e.dt.reset(nodes * na)
	}
	est := e.childEstimate(nodes)
	nextStates := reuse(e.spStates, est)
	nextInputs := reuse(e.spInputs, est)
	nextViews := reuse(e.spViews, est*n)
	var nextMults []int64
	if e.mults != nil {
		nextMults = reuse(e.spMults, est)
	}
	materialize := func() {
		if nextMults == nil {
			nextMults = reuse(e.spMults, est)
			for range nextStates {
				nextMults = append(nextMults, 1)
			}
		}
	}
	nv := e.growBuf
	var raw, hits int64
	err := func() (err error) {
		defer recoverStepper(&err)
		for i := 0; i < nodes; i++ {
			if i%growPollStride == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			vs := e.views[i*n : (i+1)*n]
			m := e.mult(i)
			for a := 0; a < na; a++ {
				ns, ok := e.st.Step(e.sctx, e.states[i], a, vs, nv)
				if !ok {
					continue
				}
				raw += m
				if dedup {
					h := hashConfig(ns, int(e.inputs[i]), nv)
					idx, slot := e.dt.find(h, func(j int32) bool {
						return nextStates[j] == ns && nextInputs[j] == e.inputs[i] &&
							viewsEq(nextViews[int(j)*n:(int(j)+1)*n], nv)
					})
					if idx >= 0 {
						hits++
						materialize()
						nextMults[idx] += m
						if sink != nil {
							sink.count(m)
						}
						continue
					}
					e.dt.claim(slot, int32(len(nextStates)))
				}
				if m != 1 {
					materialize()
				}
				nextStates = append(nextStates, ns)
				nextInputs = append(nextInputs, e.inputs[i])
				nextViews = append(nextViews, nv...)
				if nextMults != nil {
					nextMults = append(nextMults, m)
				}
				if sink != nil {
					sink.count(m)
					sink.leaf(nextViews[len(nextViews)-n:], e.inputs[i])
				}
			}
		}
		return nil
	}()
	if err != nil {
		if ctx.Err() == nil {
			e.err = err // Stepper panic: state is suspect, poison.
		}
		return err
	}
	e.commit(nextStates, nextInputs, nextViews, nextMults)
	e.noteRound(dedup, raw, hits, gs)
	return nil
}

// viewsEq compares two equal-length view rows.
func viewsEq(a, b []int) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// commit swaps the freshly grown frontier in and retires the old
// arrays as next round's spare buffers, recording the round's fan-out
// for the next presize estimate.
func (e *Engine) commit(states []int, inputs []int32, views []int, mults []int64) {
	e.lastNodes, e.lastChildren = len(e.states), len(states)
	e.spStates, e.states = e.states, states
	e.spInputs, e.inputs = e.inputs, inputs
	e.spViews, e.views = e.views, views
	e.spMults, e.mults = e.mults, mults
	e.horizon++
	// Seal the interner round so next round's view lookups probe a
	// fresh, round-sized shard instead of the cumulative table.
	e.sctx.In.sealRound()
}

// noteRound folds one committed round into the auto-dedup policy and
// the per-call stats.
func (e *Engine) noteRound(dedup bool, raw, hits int64, gs *growStats) {
	if !dedup {
		return
	}
	gs.raw += raw
	gs.distinct += int64(len(e.states))
	if hits == 0 {
		e.cleanRounds++
	} else {
		e.cleanRounds = 0
	}
}

// growChunk is one worker's share of a parallel round: a contiguous
// frontier slice grown on a forked interner with chunk-local dedup.
type growChunk struct {
	child  *Interner
	states []int
	inputs []int32
	views  []int
	mults  []int64 // nil ⟺ all 1
	raw    int64
	hits   int64
	err    error
}

// growPar advances the frontier one round on e.workers chunked
// goroutines. Each chunk grows on a worker-forked interner; the merge
// absorbs the forks in chunk order and re-dedups across chunks, so the
// committed frontier — node order, view ids, multiplicities — is
// bit-identical to what the sequential grow would have produced.
func (e *Engine) growPar(ctx context.Context, gs *growStats) error {
	n, na := e.n, e.na
	nodes := len(e.states)
	dedup := e.dedupOn()
	workers := e.workers
	chunkLen := (nodes + workers - 1) / workers
	numChunks := (nodes + chunkLen - 1) / chunkLen
	chunks := make([]growChunk, numChunks)
	var abort atomic.Bool
	var wg sync.WaitGroup
	if e.scr != nil {
		// Child forks come from the arena freelist; hand them out on
		// this goroutine so the freelist needs no lock.
		e.scr.resetKids()
		for c := 0; c < numChunks; c++ {
			chunks[c].child = e.scr.childInterner(e.sctx.In)
		}
	}
	for c := 0; c < numChunks; c++ {
		lo := c * chunkLen
		hi := min(lo+chunkLen, nodes)
		wg.Add(1)
		go func(ch *growChunk, lo, hi int) {
			defer wg.Done()
			defer func() {
				// Runs after recoverStepper: a failed chunk (cancel or
				// panic) flips abort so sibling chunks stop early.
				if ch.err != nil {
					abort.Store(true)
				}
			}()
			defer recoverStepper(&ch.err)
			if ch.child == nil {
				ch.child = NewInterner(e.sctx.In)
			}
			cctx := &Ctx{In: ch.child}
			var dt dedupTable
			if dedup {
				dt.reset((hi - lo) * na)
			}
			est := e.childEstimate(hi - lo)
			ch.states = make([]int, 0, est)
			ch.inputs = make([]int32, 0, est)
			ch.views = make([]int, 0, est*n)
			nv := make([]int, n)
			materialize := func() {
				if ch.mults == nil {
					ch.mults = make([]int64, len(ch.states))
					for i := range ch.mults {
						ch.mults[i] = 1
					}
				}
			}
			for i := lo; i < hi; i++ {
				if (i-lo)%growPollStride == 0 {
					if cerr := ctx.Err(); cerr != nil {
						ch.err = cerr
						return
					}
					if abort.Load() {
						return
					}
				}
				vs := e.views[i*n : (i+1)*n]
				m := e.mult(i)
				for a := 0; a < na; a++ {
					ns, ok := e.st.Step(cctx, e.states[i], a, vs, nv)
					if !ok {
						continue
					}
					ch.raw += m
					if dedup {
						h := hashConfig(ns, int(e.inputs[i]), nv)
						idx, slot := dt.find(h, func(j int32) bool {
							return ch.states[j] == ns && ch.inputs[j] == e.inputs[i] &&
								viewsEq(ch.views[int(j)*n:(int(j)+1)*n], nv)
						})
						if idx >= 0 {
							ch.hits++
							materialize()
							ch.mults[idx] += m
							continue
						}
						dt.claim(slot, int32(len(ch.states)))
					}
					if m != 1 {
						materialize()
					}
					ch.states = append(ch.states, ns)
					ch.inputs = append(ch.inputs, e.inputs[i])
					ch.views = append(ch.views, nv...)
					if ch.mults != nil {
						ch.mults = append(ch.mults, m)
					}
				}
			}
		}(&chunks[c], lo, hi)
	}
	wg.Wait()
	for c := range chunks {
		if err := chunks[c].err; err != nil {
			if ctx.Err() == nil {
				e.err = err
			}
			return err
		}
	}

	// Merge, in chunk order: absorb each fork's creation log into the
	// root interner, translate the chunk's view ids, then append with
	// cross-chunk dedup.
	total := 0
	for c := range chunks {
		total += len(chunks[c].states)
	}
	if dedup {
		e.dt.reset(total)
	}
	nextStates := reuse(e.spStates, total)
	nextInputs := reuse(e.spInputs, total)
	nextViews := reuse(e.spViews, total*n)
	var nextMults []int64
	if e.mults != nil {
		nextMults = reuse(e.spMults, total)
	}
	materialize := func() {
		if nextMults == nil {
			nextMults = reuse(e.spMults, total)
			for range nextStates {
				nextMults = append(nextMults, 1)
			}
		}
	}
	var raw, hits int64
	for c := range chunks {
		ch := &chunks[c]
		raw += ch.raw
		hits += ch.hits
		trans := e.sctx.In.absorb(ch.child)
		gs.forks++
		gs.absorbed += len(trans)
		base := ch.child.base
		for i, v := range ch.views {
			if v >= base {
				ch.views[i] = trans[v-base]
			}
		}
		for i := 0; i < len(ch.states); i++ {
			vs := ch.views[i*n : (i+1)*n]
			m := int64(1)
			if ch.mults != nil {
				m = ch.mults[i]
			}
			if dedup {
				h := hashConfig(ch.states[i], int(ch.inputs[i]), vs)
				idx, slot := e.dt.find(h, func(j int32) bool {
					return nextStates[j] == ch.states[i] && nextInputs[j] == ch.inputs[i] &&
						viewsEq(nextViews[int(j)*n:(int(j)+1)*n], vs)
				})
				if idx >= 0 {
					hits++
					materialize()
					nextMults[idx] += m
					continue
				}
				e.dt.claim(slot, int32(len(nextStates)))
			}
			if m != 1 {
				materialize()
			}
			nextStates = append(nextStates, ch.states[i])
			nextInputs = append(nextInputs, ch.inputs[i])
			nextViews = append(nextViews, vs...)
			if nextMults != nil {
				nextMults = append(nextMults, m)
			}
		}
	}
	e.commit(nextStates, nextInputs, nextViews, nextMults)
	e.noteRound(dedup, raw, hits, gs)
	return nil
}

// scan analyzes the live frontier at the current horizon without
// growing it (the rounds == 0 path, and the path after a parallel final
// round). Large frontiers fan out over scanPar.
func (e *Engine) scan(ctx context.Context) (Result, error) {
	if e.workers > 1 && len(e.states) >= parMinFrontier {
		return e.scanPar(ctx)
	}
	n := e.n
	var sink leafSink
	sink.reset(e, e.frontierBase())
	for i := 0; i < len(e.states); i++ {
		if i%scanPollStride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		sink.count(e.mult(i))
		sink.leaf(e.views[i*n:(i+1)*n], e.inputs[i])
		if sink.stopped {
			break
		}
	}
	return sink.result(), nil
}

// scanChunk is one worker's share of a parallel leaf scan: a local
// union-find over the chunk's vertices, merged like RunChecked phase 3.
type scanChunk struct {
	uf      compUF
	verts   flatU64
	keys    []int64
	configs int64
	stopped bool
	err     error
}

func (e *Engine) scanPar(ctx context.Context) (Result, error) {
	n := e.n
	nodes := len(e.states)
	workers := e.workers
	chunkLen := (nodes + workers - 1) / workers
	numChunks := (nodes + chunkLen - 1) / chunkLen
	chunks := make([]scanChunk, numChunks)
	var abort atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo := c * chunkLen
		hi := min(lo+chunkLen, nodes)
		wg.Add(1)
		go func(ch *scanChunk, lo, hi int) {
			defer wg.Done()
			vertex := func(proc, view int) int32 {
				k := vertexKey(proc, view)
				id, slot, hit := ch.verts.probe(packVertex(k))
				if hit {
					return id
				}
				id = ch.uf.add()
				ch.verts.setAt(slot, packVertex(k), id)
				ch.keys = append(ch.keys, k)
				return id
			}
			for i := lo; i < hi; i++ {
				if (i-lo)%scanPollStride == 0 {
					if cerr := ctx.Err(); cerr != nil {
						ch.err = cerr
						return
					}
					if abort.Load() {
						ch.stopped = true
						return
					}
				}
				vs := e.views[i*n : (i+1)*n]
				ch.configs += e.mult(i)
				root := ch.uf.find(vertex(0, vs[0]))
				for p := 1; p < n; p++ {
					root = ch.uf.union(root, vertex(p, vs[p]))
				}
				switch e.inputs[i] {
				case 0:
					ch.uf.mark(root, flagHas0)
				case int32(e.all1):
					ch.uf.mark(root, flagHas1)
				}
				// A chunk-local mixed component is mixed globally, so
				// EarlyExit can stop every worker right here.
				if e.opt.EarlyExit && ch.uf.mixed > 0 {
					abort.Store(true)
					ch.stopped = true
					return
				}
			}
		}(&chunks[c], lo, hi)
	}
	wg.Wait()
	for c := range chunks {
		if err := chunks[c].err; err != nil {
			return Result{}, err
		}
	}

	// Merge the chunk union-finds through the dense global table.
	var sink leafSink
	sink.reset(e, e.frontierBase())
	guf := &e.uf
	exhaustive := true
	var configs int64
	for c := range chunks {
		ch := &chunks[c]
		configs += ch.configs
		if ch.stopped {
			exhaustive = false
		}
		gid := make([]int32, len(ch.keys))
		for i, k := range ch.keys {
			gid[i] = sink.vertex(int(k&vertProcMask), int(k>>vertProcBits))
		}
		for i := range ch.keys {
			guf.union(gid[i], gid[ch.uf.find(int32(i))])
		}
		for i := range ch.keys {
			if ch.uf.parent[i] == int32(i) && ch.uf.flag[i] != 0 {
				guf.mark(gid[i], ch.uf.flag[i])
			}
		}
	}
	return Result{
		Configs:         configs,
		Vertices:        len(guf.parent),
		Components:      guf.roots,
		MixedComponents: guf.mixed,
		Solvable:        guf.mixed == 0,
		Exhaustive:      exhaustive,
	}, nil
}
