// The symbolic index-interval backend.
//
// The enumerating engine walks every admissible history. For the
// two-process Γ-alphabet problems this repository actually analyzes,
// that walk is provably redundant: the index function of Definition
// III.1 is a bijection Γ^r → [0, 3^r − 1] (Lemma III.2) whose ±1
// adjacency *is* the indistinguishability relation (Lemma III.4), and
// PR 6's instrumentation showed the frontier is history-injective
// (dedup ratio exactly 1.0) — there is nothing left to compress
// per-history. The step change is to stop materializing histories at
// all: track the *set of admissible indices* at each horizon as a
// union of intervals, one list per scheme-DFA state, and read the
// whole analysis (configuration count, component structure, verdict)
// off the interval endpoints in closed form.
//
// Stepping an interval costs O(1) when the DFA state treats all three
// letters alike ([lo, hi] → [3·lo, 3·hi + 2]); states that distinguish
// letters split intervals at most a constant factor per round, and a
// frontier that fragments past Options.SymbolicMaxIntervals aborts
// with errSymbolicFragmented so callers fall back to the enumerating
// engine. Solvability at horizons far past enumeration (3^40 histories
// and beyond) then costs microseconds on schemes whose DFAs are
// letter-uniform almost everywhere (R1, Fair, AlmostFair, K-loss
// budgets before the budget bites).
package fullinfo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"time"
)

// BackendMode selects how an analysis walks the admissible-history
// space.
type BackendMode int

const (
	// BackendAuto uses the symbolic index-interval backend whenever the
	// Stepper advertises a chain structure (SymbolicStepper) and the run
	// does not need a retained graph, falling back to the enumerating
	// engine otherwise — or mid-run, when the interval frontier
	// fragments past the threshold. The zero value, hence the default
	// everywhere.
	BackendAuto BackendMode = iota
	// BackendEnumerate always walks histories one by one.
	BackendEnumerate
	// BackendSymbolic insists on the symbolic backend. It still
	// degrades to enumeration when the Stepper has no chain structure,
	// the run retains a graph, or the intervals fragment — but then the
	// degradation is recorded in Stats.SymbolicFallbacks, where
	// BackendAuto records only genuine mid-run fragmentation.
	BackendSymbolic
)

// String returns the flag spelling of the mode.
func (m BackendMode) String() string {
	switch m {
	case BackendAuto:
		return "auto"
	case BackendEnumerate:
		return "enumerate"
	case BackendSymbolic:
		return "symbolic"
	}
	return fmt.Sprintf("BackendMode(%d)", int(m))
}

// ParseBackendMode parses a -backend flag value.
func ParseBackendMode(s string) (BackendMode, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "enumerate", "enum":
		return BackendEnumerate, nil
	case "symbolic", "sym":
		return BackendSymbolic, nil
	}
	return BackendAuto, fmt.Errorf("fullinfo: unknown backend %q (want auto, enumerate, or symbolic)", s)
}

// SymbolicSpec is the chain structure of a two-process Γ-alphabet
// problem: the scheme's prefix DFA re-expressed over index child
// offsets. Providing one (via SymbolicStepper) asserts that the
// Stepper's enumerate semantics are exactly the two-process chain of
// Lemma III.4 — two processes, four input assignments, per-copy
// configuration graphs that are paths on the sorted admissible
// indices, with cross-copy view sharing only at the extremal indices
// 0 (the all-black-loss word, whose white view is input-independent
// in the black coordinate) and 3^r − 1 (symmetrically). The symbolic
// result computation is derived from that shape and is wrong for any
// other.
type SymbolicSpec struct {
	// Base is the index branching factor per round: every index-k word
	// has children [Base·k, Base·k + Base − 1] (3 for Γ, by Definition
	// III.1).
	Base int
	// Start is the DFA start state, or negative when no history at all
	// is admissible.
	Start int
	// Next[s*Base+a] is the DFA successor of state s under letter a,
	// or −1 when the extension leaves Pref(L). Letters are numbered by
	// their child offset under an even parent index: for Γ, 0 is 'b'
	// (δ = −1), 1 is '.' (δ = 0), 2 is 'w' (δ = +1). Odd parent
	// indices mirror the offsets (letter a lands at Base − 1 − a) —
	// the (−1)^ind sign of the index recurrence.
	Next []int32
}

// SymbolicStepper is a Stepper that also exposes the chain structure
// the symbolic backend needs. SymbolicSpec returns ok=false when this
// particular instance has none (e.g. a Σ-alphabet scheme where the
// double omission is live), in which case the engine enumerates.
type SymbolicStepper interface {
	Stepper
	SymbolicSpec() (SymbolicSpec, bool)
}

func (sp SymbolicSpec) numStates() int {
	if sp.Base <= 0 {
		return 0
	}
	return len(sp.Next) / sp.Base
}

// minimize merges DFA states with identical residual prefix languages
// (Moore refinement, all live states initially one block; dead is its
// own implicit block). The payoff is structural, not just smaller
// tables: product constructions routinely distinguish states whose
// futures coincide — Fair()'s four-state DFA collapses to one
// universal state — and every merged state is one fewer list an index
// run can be split across, so frontiers that would fragment between
// redundant states stay whole.
func (sp SymbolicSpec) minimize() SymbolicSpec {
	n := sp.numStates()
	if n == 0 || sp.Start < 0 {
		return sp
	}
	B := sp.Base
	block := make([]int, n)
	blocks := 1
	for {
		index := make(map[string]int, blocks)
		next := make([]int, n)
		sig := make([]byte, 0, 8*(B+1))
		for s := 0; s < n; s++ {
			sig = sig[:0]
			sig = appendSig(sig, block[s])
			for a := 0; a < B; a++ {
				if t := sp.Next[s*B+a]; t < 0 {
					sig = appendSig(sig, -1)
				} else {
					sig = appendSig(sig, block[t])
				}
			}
			id, ok := index[string(sig)]
			if !ok {
				id = len(index)
				index[string(sig)] = id
			}
			next[s] = id
		}
		block = next
		if len(index) == blocks {
			break
		}
		blocks = len(index)
	}
	out := SymbolicSpec{Base: B, Start: block[sp.Start], Next: make([]int32, blocks*B)}
	for i := range out.Next {
		out.Next[i] = -1
	}
	for s := 0; s < n; s++ {
		for a := 0; a < B; a++ {
			if t := sp.Next[s*B+a]; t >= 0 {
				out.Next[block[s]*B+a] = int32(block[t])
			}
		}
	}
	return out
}

// appendSig appends a block id to a refinement signature.
func appendSig(sig []byte, v int) []byte {
	return append(sig,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
}

// errSymbolicFragmented aborts a symbolic run whose interval frontier
// stopped being a compact union of ranges; the engine falls back to
// enumeration and records the event in Stats.SymbolicFallbacks.
var errSymbolicFragmented = errors.New("fullinfo: symbolic interval frontier fragmented past threshold")

const (
	// symDefaultMaxIntervals is the default fragmentation threshold:
	// the total (state, interval) pair count past which a symbolic run
	// abandons itself. Schemes that fragment do so geometrically (TW
	// doubles every round), so the precise value only shifts the
	// fallback horizon by a round or two; what matters is that the
	// symbolic attempt costs far less than the enumeration it would
	// have replaced.
	symDefaultMaxIntervals = 4096
	// symNarrowWidth is the interval width up to which a
	// letter-distinguishing DFA state is stepped by per-index
	// enumeration. A wider interval hitting such a state is genuine
	// exponential fragmentation — each index contributes its own
	// (non-adjacent) children — so the step aborts immediately instead
	// of materializing the shards.
	symNarrowWidth = 64
)

var (
	bigOne = big.NewInt(1)
	bigTwo = big.NewInt(2)
)

// span is one inclusive index interval [lo, hi]. Spans are immutable
// once in a frontier; stepping allocates fresh endpoints.
type span struct {
	lo, hi *big.Int
}

// symEngine tracks the admissible-index frontier of one chain problem
// as per-DFA-state sorted disjoint interval lists.
type symEngine struct {
	spec  SymbolicSpec
	opt   Options
	depth int
	cur   [][]span
	// intervals is the current (state, interval) pair count, peak its
	// lifetime maximum, lastRuns the maximal-run count of the last
	// result() (runs merge intervals across states, so runs ≤
	// intervals; their ratio is the fragmentation gauge).
	intervals int
	peak      int
	lastRuns  int
}

// symEngineFor returns a symbolic engine for the problem, or nil when
// the options or the Stepper rule the backend out.
func symEngineFor(st Stepper, opt Options) *symEngine {
	if opt.Backend == BackendEnumerate || opt.BuildGraph {
		return nil
	}
	ss, ok := st.(SymbolicStepper)
	if !ok {
		return nil
	}
	spec, ok := ss.SymbolicSpec()
	if !ok {
		return nil
	}
	return newSymEngine(spec, opt)
}

func newSymEngine(spec SymbolicSpec, opt Options) *symEngine {
	spec = spec.minimize()
	e := &symEngine{spec: spec, opt: opt, cur: make([][]span, spec.numStates())}
	if spec.Start >= 0 && spec.Start < len(e.cur) {
		e.cur[spec.Start] = []span{{lo: big.NewInt(0), hi: big.NewInt(0)}}
		e.intervals, e.peak, e.lastRuns = 1, 1, 1
	}
	return e
}

func (e *symEngine) maxIntervals() int {
	if e.opt.SymbolicMaxIntervals > 0 {
		return e.opt.SymbolicMaxIntervals
	}
	return symDefaultMaxIntervals
}

// step advances the frontier one round. On error (fragmentation) the
// frontier is left at its previous depth, so the caller can hand the
// unchanged problem to the enumerating engine.
func (e *symEngine) step() error {
	B := e.spec.Base
	bigB := big.NewInt(int64(B))
	next := make([][]span, len(e.cur))
	for s, spans := range e.cur {
		if len(spans) == 0 {
			continue
		}
		row := e.spec.Next[s*B : (s+1)*B]
		uniform := true
		for a := 1; a < B; a++ {
			if row[a] != row[0] {
				uniform = false
				break
			}
		}
		if uniform {
			// Every child of every index in the span is admissible and
			// lands in the same state: [lo, hi] → [B·lo, B·hi + B − 1],
			// exactly — no fragmentation, ever. (Or the whole span dies.)
			t := int(row[0])
			if t < 0 {
				continue
			}
			for _, sp := range spans {
				lo := new(big.Int).Mul(sp.lo, bigB)
				hi := new(big.Int).Mul(sp.hi, bigB)
				hi.Add(hi, big.NewInt(int64(B-1)))
				next[t] = append(next[t], span{lo: lo, hi: hi})
			}
			continue
		}
		// Letter-distinguishing state: each index's surviving children
		// depend on its parity, producing gapped child sets. Narrow
		// spans are stepped index by index (the merge below re-compacts
		// adjacent survivors); a wide span here is genuine exponential
		// fragmentation, so abort before materializing it.
		for _, sp := range spans {
			if new(big.Int).Sub(sp.hi, sp.lo).Cmp(big.NewInt(symNarrowWidth)) > 0 {
				return errSymbolicFragmented
			}
			for k := new(big.Int).Set(sp.lo); k.Cmp(sp.hi) <= 0; k.Add(k, bigOne) {
				odd := k.Bit(0) == 1
				for a := 0; a < B; a++ {
					t := int(row[a])
					if t < 0 {
						continue
					}
					off := int64(a)
					if odd {
						off = int64(B - 1 - a)
					}
					c := new(big.Int).Mul(k, bigB)
					c.Add(c, big.NewInt(off))
					next[t] = append(next[t], span{lo: c, hi: new(big.Int).Set(c)})
				}
			}
		}
	}
	total := 0
	for t := range next {
		next[t] = normalizeSpans(next[t])
		total += len(next[t])
	}
	if total > e.maxIntervals() {
		return errSymbolicFragmented
	}
	e.cur = next
	e.depth++
	e.intervals = total
	if total > e.peak {
		e.peak = total
	}
	return nil
}

// normalizeSpans sorts spans by lower endpoint and merges overlapping
// or adjacent ones in place.
func normalizeSpans(spans []span) []span {
	if len(spans) <= 1 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo.Cmp(spans[j].lo) < 0 })
	out := spans[:1]
	gap := new(big.Int)
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if gap.Add(last.hi, bigOne); s.lo.Cmp(gap) <= 0 {
			if s.hi.Cmp(last.hi) > 0 {
				last.hi = s.hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// extendTo steps the frontier to depth r and computes the analysis
// there. Errors are either ctx.Err() or errSymbolicFragmented; in both
// cases the frontier is intact at its pre-error depth.
func (e *symEngine) extendTo(ctx context.Context, r int) (Result, error) {
	for e.depth < r {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := e.step(); err != nil {
			return Result{}, err
		}
	}
	return e.result(), nil
}

// result reads the full analysis off the interval frontier in closed
// form. Let S ⊆ [0, M], M = Base^depth − 1, be the admissible index
// set, |S| its size and m its number of maximal runs (adjacent indices
// merged across DFA states — the index is a bijection, so a given
// index lives in exactly one state's list). By the chain structure
// (Lemma III.4), each of the four input copies is a disjoint union of
// m paths, adjacent in-S index pairs share exactly one view (the
// parity-determined blind process, so never two pairs sharing a view
// with the same middle word), and the only cross-copy view sharing is
// at index 0 (white's view there ignores black's input: merges the
// copies pairwise across the black coordinate) and index M
// (symmetrically). Hence with has0 = [0 ∈ S], hasM = [M ∈ S], and
// sameRun = [m = 1 ∧ has0 ∧ hasM]:
//
//	Configs    = 4·|S|
//	Vertices   = 4·(|S| + m) − 2·has0 − 2·hasM
//	Components = 4·m − 2·has0 − 2·hasM + sameRun
//	Mixed      = sameRun  (the run then links all four copies, in
//	            particular all-0 with all-1)
//	Solvable   = ¬sameRun
//
// The differential suites in internal/chain pin these against both
// the enumerating engine and the materializing sequential reference on
// every named scheme and on random DBA schemes.
func (e *symEngine) result() Result {
	var all []span
	for _, spans := range e.cur {
		all = append(all, spans...)
	}
	runs := normalizeSpans(all)
	e.lastRuns = len(runs)
	if len(runs) == 0 {
		return Result{Solvable: true, Exhaustive: true}
	}
	size := new(big.Int)
	tmp := new(big.Int)
	for _, r := range runs {
		size.Add(size, tmp.Sub(r.hi, r.lo))
		size.Add(size, bigOne)
	}
	maxIdx := new(big.Int).Exp(big.NewInt(int64(e.spec.Base)), big.NewInt(int64(e.depth)), nil)
	maxIdx.Sub(maxIdx, bigOne)
	m := len(runs)
	has0 := runs[0].lo.Sign() == 0
	hasM := runs[m-1].hi.Cmp(maxIdx) == 0
	sameRun := m == 1 && has0 && hasM

	configs := new(big.Int).Lsh(size, 2)
	vertices := new(big.Int).Add(size, big.NewInt(int64(m)))
	vertices.Lsh(vertices, 2)
	components := 4 * m
	if has0 {
		components -= 2
		vertices.Sub(vertices, bigTwo)
	}
	if hasM {
		components -= 2
		vertices.Sub(vertices, bigTwo)
	}
	mixed := 0
	if sameRun {
		components++
		mixed = 1
	}
	res := Result{
		Configs:         satInt64(configs),
		Vertices:        satInt(vertices),
		Components:      components,
		MixedComponents: mixed,
		Solvable:        !sameRun,
		Exhaustive:      true,
	}
	if !configs.IsInt64() {
		res.ConfigsExact = configs
	}
	return res
}

// stats builds the Observer snapshot for a symbolic extension of
// `rounds` rounds that produced res.
func (e *symEngine) stats(res Result, rounds int, start time.Time, fallbacks int) Stats {
	return Stats{
		Horizon:           e.depth,
		Rounds:            rounds,
		Configs:           res.Configs,
		Vertices:          res.Vertices,
		Components:        res.Components,
		MixedComponents:   res.MixedComponents,
		Merges:            res.Vertices - res.Components,
		Workers:           1,
		SymbolicRounds:    rounds,
		Intervals:         e.intervals,
		IntervalRuns:      e.lastRuns,
		IntervalsPeak:     e.peak,
		SymbolicFallbacks: fallbacks,
		WallNanos:         time.Since(start).Nanoseconds(),
	}
}

// satInt64 saturates a non-negative big integer to int64.
func satInt64(x *big.Int) int64 {
	if x.IsInt64() {
		return x.Int64()
	}
	return math.MaxInt64
}

// satInt saturates a non-negative big integer to int.
func satInt(x *big.Int) int {
	if x.IsInt64() {
		if v := x.Int64(); v <= math.MaxInt {
			return int(v)
		}
	}
	return math.MaxInt
}
