package fullinfo

// Stats is an instrumentation snapshot of one engine run (Run /
// RunChecked) or one incremental round (Engine.Extend). Every field is a
// scalar so snapshots can be compared, aggregated, and serialized
// cheaply. Stats travel through Options.Observer — never through Result,
// which stays a pure analysis outcome.
type Stats struct {
	// Horizon is the round horizon the snapshot describes.
	Horizon int
	// Rounds is how many rounds of tree growth this invocation walked
	// (r for a from-scratch run, usually 1 for an Extend).
	Rounds int
	// Configs is the number of leaf configurations streamed.
	Configs int64
	// Vertices is the number of distinct (process, view) pairs seen.
	Vertices int
	// Components and MixedComponents mirror the Result fields.
	Components      int
	MixedComponents int
	// Merges counts union operations that actually fused two
	// components (Vertices - Components when the scan is exhaustive).
	Merges int
	// ViewsInterned is the total id count of the canonical interner
	// after the run; NewViews is how many of those this invocation
	// created.
	ViewsInterned int
	NewViews      int
	// Workers is the pool size used; WorkerForks counts worker-local
	// interner forks (0 on sequential paths); Absorbed counts
	// creation-log entries canonicalized back into the shared interner
	// during the merge phase.
	Workers     int
	WorkerForks int
	Absorbed    int
	// Subtrees is the number of frontier subtrees dispatched to the
	// pool (pool utilization is Subtrees spread over Workers). For the
	// incremental engine it is the live frontier length instead.
	Subtrees int
	// FrontierRaw counts frontier nodes before hash-consed dedup and
	// FrontierDistinct after: two nodes with identical (state, inputs,
	// views) collapse into one distinct configuration carrying a
	// multiplicity. Both are totals across the dedup'd rounds of the
	// invocation; they stay 0 when dedup never ran (Run, or DedupOff).
	FrontierRaw      int64
	FrontierDistinct int64
	// WallNanos is the wall-clock duration of the invocation.
	WallNanos int64
}

// DedupRatio returns FrontierRaw / FrontierDistinct — how many raw
// frontier nodes each distinct configuration stands for — or 1 when no
// dedup'd round has run.
func (s *Stats) DedupRatio() float64 {
	if s.FrontierDistinct == 0 {
		return 1
	}
	return float64(s.FrontierRaw) / float64(s.FrontierDistinct)
}

// merge folds another snapshot into s, accumulating work counters and
// keeping the most recent structural fields. It is what callers use to
// aggregate per-round stats over a MinRounds search.
func (s *Stats) Merge(o Stats) {
	s.Horizon = o.Horizon
	s.Rounds += o.Rounds
	s.Configs += o.Configs
	s.Vertices = o.Vertices
	s.Components = o.Components
	s.MixedComponents = o.MixedComponents
	s.Merges = o.Merges
	s.ViewsInterned = o.ViewsInterned
	s.NewViews += o.NewViews
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.WorkerForks += o.WorkerForks
	s.Absorbed += o.Absorbed
	s.Subtrees = o.Subtrees
	s.FrontierRaw += o.FrontierRaw
	s.FrontierDistinct += o.FrontierDistinct
	s.WallNanos += o.WallNanos
}
