package fullinfo

// Stats is an instrumentation snapshot of one engine run (Run /
// RunChecked) or one incremental round (Engine.Extend). Every field is a
// scalar so snapshots can be compared, aggregated, and serialized
// cheaply. Stats travel through Options.Observer — never through Result,
// which stays a pure analysis outcome.
type Stats struct {
	// Horizon is the round horizon the snapshot describes.
	Horizon int
	// Rounds is how many rounds of tree growth this invocation walked
	// (r for a from-scratch run, usually 1 for an Extend).
	Rounds int
	// Configs is the number of leaf configurations streamed.
	Configs int64
	// Vertices is the number of distinct (process, view) pairs seen.
	Vertices int
	// Components and MixedComponents mirror the Result fields.
	Components      int
	MixedComponents int
	// Merges counts union operations that actually fused two
	// components (Vertices - Components when the scan is exhaustive).
	Merges int
	// ViewsInterned is the total id count of the canonical interner
	// after the run; NewViews is how many of those this invocation
	// created.
	ViewsInterned int
	NewViews      int
	// Workers is the pool size used; WorkerForks counts worker-local
	// interner forks (0 on sequential paths); Absorbed counts
	// creation-log entries canonicalized back into the shared interner
	// during the merge phase.
	Workers     int
	WorkerForks int
	Absorbed    int
	// Subtrees is the number of frontier subtrees dispatched to the
	// pool (pool utilization is Subtrees spread over Workers). For the
	// incremental engine it is the live frontier length instead.
	Subtrees int
	// FrontierRaw counts frontier nodes before hash-consed dedup and
	// FrontierDistinct after: two nodes with identical (state, inputs,
	// views) collapse into one distinct configuration carrying a
	// multiplicity. Both are totals across the dedup'd rounds of the
	// invocation; they stay 0 when dedup never ran (Run, or DedupOff).
	FrontierRaw      int64
	FrontierDistinct int64
	// SymbolicRounds is how many of this invocation's rounds the
	// symbolic index-interval backend advanced (0 when it never
	// engaged). Intervals is the (state, interval) pair count of the
	// symbolic frontier after the invocation, IntervalRuns the number
	// of maximal index runs those intervals cover when merged across
	// DFA states (runs ≤ intervals; see FragmentationRatio), and
	// IntervalsPeak the largest interval count any round reached.
	SymbolicRounds int
	Intervals      int
	IntervalRuns   int
	IntervalsPeak  int
	// SymbolicFallbacks counts degradations to the enumerating engine:
	// mid-run interval fragmentation under any backend mode, plus — so
	// the demand is auditable — a BackendSymbolic request the backend
	// could not serve at all (no chain structure, or BuildGraph).
	SymbolicFallbacks int
	// WallNanos is the wall-clock duration of the invocation.
	WallNanos int64
}

// DedupRatio returns FrontierRaw / FrontierDistinct — how many raw
// frontier nodes each distinct configuration stands for — or 1 when no
// dedup'd round has run.
func (s *Stats) DedupRatio() float64 {
	if s.FrontierDistinct == 0 {
		return 1
	}
	return float64(s.FrontierRaw) / float64(s.FrontierDistinct)
}

// FragmentationRatio returns Intervals / IntervalRuns — how many
// (state, interval) pairs the symbolic frontier spends per maximal
// index run, the gauge the fallback threshold is guarding — or 1 when
// the symbolic backend has not run.
func (s *Stats) FragmentationRatio() float64 {
	if s.IntervalRuns == 0 {
		return 1
	}
	return float64(s.Intervals) / float64(s.IntervalRuns)
}

// satAdd64 adds two non-negative counters, saturating at MaxInt64. The
// symbolic backend reports per-round config counts that are themselves
// saturated, so a deep MinRounds aggregate would otherwise wrap.
func satAdd64(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return 1<<63 - 1
}

// merge folds another snapshot into s, accumulating work counters and
// keeping the most recent structural fields. It is what callers use to
// aggregate per-round stats over a MinRounds search.
func (s *Stats) Merge(o Stats) {
	s.Horizon = o.Horizon
	s.Rounds += o.Rounds
	s.Configs = satAdd64(s.Configs, o.Configs)
	s.Vertices = o.Vertices
	s.Components = o.Components
	s.MixedComponents = o.MixedComponents
	s.Merges = o.Merges
	s.ViewsInterned = o.ViewsInterned
	s.NewViews += o.NewViews
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.WorkerForks += o.WorkerForks
	s.Absorbed += o.Absorbed
	s.Subtrees = o.Subtrees
	s.FrontierRaw += o.FrontierRaw
	s.FrontierDistinct += o.FrontierDistinct
	s.SymbolicRounds += o.SymbolicRounds
	s.Intervals = o.Intervals
	s.IntervalRuns = o.IntervalRuns
	if o.IntervalsPeak > s.IntervalsPeak {
		s.IntervalsPeak = o.IntervalsPeak
	}
	s.SymbolicFallbacks += o.SymbolicFallbacks
	s.WallNanos += o.WallNanos
}
