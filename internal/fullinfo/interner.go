package fullinfo

import (
	"encoding/binary"
	"math"
	"sort"
)

// View ids. Non-negative ids are interned views; the engine reserves
// small negative values as sentinels:
//
//	-1         null reception (a dropped message)
//	-2 - bit   initial view of a process whose input bit is bit (InitView)
//
// Interners hand out ids from a contiguous range. A worker-local
// interner forks from the shared one: it resolves hits against the
// (frozen) shared tables first and allocates its misses from its own
// range, recording a creation log so the ids can be canonicalized into
// the shared space at merge time (absorb).

// InitView returns the sentinel view id of a process that has seen
// nothing but its own input bit (0 or 1).
func InitView(bit int) int { return -2 - bit }

// internEntry is one creation-log record: either a view (prev, recv) or
// a received-views tuple (arena offset, length).
type internEntry struct {
	tuple bool
	a, b  int
}

// maxInternID caps the id space so ids always fit the int32 slots of
// the flat tables; a run needing more ids would exhaust memory long
// before reaching it.
const maxInternID = math.MaxInt32

// Interner hash-conses full-information views and received-view tuples
// into dense integer ids. Views and tuples share one id space. The view
// fast path is an open-addressed flat table (flatU64) rather than a Go
// map: View is the single hottest call of the engine, and the flat
// probe costs one multiply plus (usually) one cache line.
//
// Root interners additionally shard the view table by round. The
// incremental engine seals a boundary after every frontier round
// (sealRound), and an entry (prev, recv) is placed in — and looked up
// from — the shard indexed by prev's round plus one. Any two calls
// with the same key compute the same shard, so hash-consing stays
// exact for arbitrary steppers; for the generational steppers in this
// repository (every view's prev comes from the previous frontier) the
// effect is that the hot probe touches a table sized like one round,
// not like the whole history, and the cumulative table's ever-growing
// rehashes disappear. Child forks keep a single local table: they live
// within one round.
type Interner struct {
	parent *Interner // read-only while any child is in use
	base   int       // first id this interner may assign
	next   int
	shards []viewShard // root view tables, bucketed by shardIdx
	bounds []int       // round boundaries: bounds[i] = first id after seal i
	views  flatU64     // child-local view table
	tuples map[string]int
	// logging records a creation log for this interner's own ids. It is
	// required on forked children (absorb replays the child log) and for
	// EachView on a root; the incremental engine's root interner runs
	// with it off, skipping one append per created id.
	logging bool
	log     []internEntry
	arena   []int // tuple value storage, referenced by log entries
	keyBuf  []byte
}

// NewInterner returns a logging interner allocating ids from
// parent.next (or 0 when parent is nil). The parent must not be mutated
// while the child is in use.
func NewInterner(parent *Interner) *Interner {
	return newInterner(parent, true)
}

func newInterner(parent *Interner, logging bool) *Interner {
	base := 0
	if parent != nil {
		base = parent.next
	}
	return &Interner{
		parent:  parent,
		base:    base,
		next:    base,
		tuples:  map[string]int{},
		logging: logging,
		keyBuf:  make([]byte, 0, 64),
	}
}

// resetRoot restores a root interner to the state newInterner(nil,
// logging) constructs, keeping every table's capacity: shard arrays are
// zeroed in place and re-adopted by shardFor, the tuple map is cleared,
// and the log/arena truncate. Scratch reuse only; the interner must
// have no live children.
func (in *Interner) resetRoot(logging bool) {
	in.parent = nil
	in.base, in.next = 0, 0
	for i := range in.shards {
		in.shards[i].clearKeep()
	}
	in.shards = in.shards[:0]
	in.bounds = in.bounds[:0]
	in.views.reset()
	clear(in.tuples)
	in.logging = logging
	in.log = in.log[:0]
	in.arena = in.arena[:0]
}

// resetChild restores a child interner to the state NewInterner(parent)
// constructs, keeping table capacity. The previous fork must have been
// fully absorbed (or abandoned) first.
func (in *Interner) resetChild(parent *Interner) {
	in.parent = parent
	in.base = parent.next
	in.next = in.base
	in.views.reset()
	clear(in.tuples)
	in.logging = true
	in.log = in.log[:0]
	in.arena = in.arena[:0]
}

// sealRound records a round boundary: ids created from now on belong
// to a new round, and view entries keyed by a pre-seal prev land in a
// fresh shard. Root interners only; the incremental engine calls this
// after committing each frontier round.
func (in *Interner) sealRound() {
	in.bounds = append(in.bounds, in.next)
}

// shardIdx maps a view key's prev id to the shard holding every entry
// with that prev: shard 0 for sentinel prevs, shard r+1 for a prev
// created in round r (rounds are the id intervals cut by sealRound;
// ids at or past the last seal count as the current round). bounds is
// append-only and a prev is only ever interned before it can appear as
// a key, so the index computed for a given prev never changes across
// seals — placement and every later lookup agree.
func (in *Interner) shardIdx(prev int) int {
	if prev < 0 {
		return 0
	}
	b := in.bounds
	nb := len(b)
	if nb == 0 || prev >= b[nb-1] {
		return nb + 1 // current round's ids
	}
	if nb == 1 || prev >= b[nb-2] {
		return nb // previous round — the generational hot path
	}
	return sort.SearchInts(b, prev+1) + 1
}

// shardFor returns the shard for keys with the given prev, extending
// the shard list on demand. A new shard's prev range starts at the
// round boundary for its index; when the range's end is already sealed
// the direct-index arrays are presized to it, so inserts never
// reallocate.
func (in *Interner) shardFor(prev int) *viewShard {
	i := in.shardIdx(prev)
	for len(in.shards) <= i {
		k := len(in.shards)
		if k < cap(in.shards) {
			// Re-adopt a retired shard's storage (zeroed by clearKeep
			// during resetRoot), so arena reuse keeps shard capacity.
			in.shards = in.shards[:k+1]
		} else {
			in.shards = append(in.shards, viewShard{})
		}
		sh := &in.shards[k]
		sh.lo = in.shardLo(k)
		if k >= 1 && k-1 < len(in.bounds) {
			if r := in.bounds[k-1] - sh.lo; r > 0 {
				sh.null = growZeroed(sh.null, r)
				sh.buckets = growZeroed(sh.buckets, r)
			}
		}
	}
	return &in.shards[i]
}

// shardLo returns the smallest prev id shard k can serve: the sentinel
// floor for shard 0, otherwise the start of round k-1.
func (in *Interner) shardLo(k int) int {
	switch {
	case k == 0:
		return -3
	case k == 1:
		return 0
	default:
		return in.bounds[k-2]
	}
}

// shardGet is the read-only lookup used when probing a frozen parent.
func (in *Interner) shardGet(prev, recv int) (int32, bool) {
	i := in.shardIdx(prev)
	if i >= len(in.shards) {
		return 0, false
	}
	return in.shards[i].lookup(prev, recv)
}

// View interns the full-information view "previous view prev, then
// received recv" (recv is a view id, a tuple id, or -1 for null).
func (in *Interner) View(prev, recv int) int {
	if in.parent != nil {
		// A parent entry's key components are ids the parent assigned
		// (or sentinels); child-local ids cannot appear in its tables.
		if prev < in.parent.next && recv < in.parent.next {
			if id, ok := in.parent.shardGet(prev, recv); ok {
				return int(id)
			}
		}
		k := packView(prev, recv)
		id32, slot, hit := in.views.probe(k)
		if hit {
			return int(id32)
		}
		id := in.newID()
		in.views.setAt(slot, k, int32(id))
		if in.logging {
			in.log = append(in.log, internEntry{a: prev, b: recv})
		}
		return id
	}
	sh := in.shardFor(prev)
	if id, ok := sh.lookup(prev, recv); ok {
		return int(id)
	}
	id := in.newID()
	sh.insert(prev, recv, int32(id))
	if in.logging {
		in.log = append(in.log, internEntry{a: prev, b: recv})
	}
	return id
}

func (in *Interner) newID() int {
	id := in.next
	if id > maxInternID {
		panic("fullinfo: interner id space exhausted")
	}
	in.next++
	return id
}

// Tuple interns a vector of received view ids (-1 entries for dropped
// messages). The caller may reuse vals after the call returns. The hit
// path performs zero heap allocations: both map lookups use the
// []byte→string compiler fast path and keyBuf is retained across calls.
func (in *Interner) Tuple(vals []int) int {
	b := in.keyBuf[:0]
	for _, v := range vals {
		b = binary.AppendVarint(b, int64(v))
	}
	in.keyBuf = b
	if in.parent != nil {
		if id, ok := in.parent.tuples[string(b)]; ok {
			return id
		}
	}
	if id, ok := in.tuples[string(b)]; ok {
		return id
	}
	id := in.next
	if id > maxInternID {
		panic("fullinfo: interner id space exhausted")
	}
	in.next++
	in.tuples[string(b)] = id
	if in.logging {
		off := len(in.arena)
		in.arena = append(in.arena, vals...)
		in.log = append(in.log, internEntry{tuple: true, a: off, b: len(vals)})
	}
	return id
}

// NumIDs returns the number of ids assigned by this interner chain.
func (in *Interner) NumIDs() int { return in.next }

// absorb replays a child interner's creation log against in,
// canonicalizing every locally assigned id. It returns trans with
// trans[id-child.base] = canonical id. Log order guarantees that any id
// referenced by an entry's key was created (hence translated) earlier.
func (in *Interner) absorb(child *Interner) []int {
	trans := make([]int, len(child.log))
	tr := func(id int) int {
		if id >= child.base {
			return trans[id-child.base]
		}
		return id
	}
	var buf []int
	for i, e := range child.log {
		if e.tuple {
			buf = buf[:0]
			for _, v := range child.arena[e.a : e.a+e.b] {
				buf = append(buf, tr(v))
			}
			trans[i] = in.Tuple(buf)
		} else {
			trans[i] = in.View(tr(e.a), tr(e.b))
		}
	}
	return trans
}

// EachView calls f for every interned view (prev, recv) → id, in
// creation order. Tuples are skipped. Only meaningful on a logging root
// interner (base 0), where ids equal log positions.
func (in *Interner) EachView(f func(prev, recv, id int)) {
	for i, e := range in.log {
		if !e.tuple {
			f(e.a, e.b, in.base+i)
		}
	}
}
