package fullinfo

import "encoding/binary"

// View ids. Non-negative ids are interned views; the engine reserves
// small negative values as sentinels:
//
//	-1         null reception (a dropped message)
//	-2 - bit   initial view of a process whose input bit is bit (InitView)
//
// Interners hand out ids from a contiguous range. A worker-local
// interner forks from the shared one: it resolves hits against the
// (frozen) shared maps first and allocates its misses from its own
// range, recording a creation log so the ids can be canonicalized into
// the shared space at merge time (absorb).

// InitView returns the sentinel view id of a process that has seen
// nothing but its own input bit (0 or 1).
func InitView(bit int) int { return -2 - bit }

type viewKey struct{ prev, recv int }

// internEntry is one creation-log record: either a view (prev, recv) or
// a received-views tuple (arena offset, length).
type internEntry struct {
	tuple bool
	a, b  int
}

// Interner hash-conses full-information views and received-view tuples
// into dense integer ids. Views and tuples share one id space.
type Interner struct {
	parent *Interner // read-only while any child is in use
	base   int       // first id this interner may assign
	next   int
	views  map[viewKey]int
	tuples map[string]int
	log    []internEntry
	arena  []int // tuple value storage, referenced by log entries
	keyBuf []byte
}

// NewInterner returns an interner allocating ids from parent.next (or 0
// when parent is nil). The parent must not be mutated while the child is
// in use.
func NewInterner(parent *Interner) *Interner {
	base := 0
	if parent != nil {
		base = parent.next
	}
	return &Interner{
		parent: parent,
		base:   base,
		next:   base,
		views:  map[viewKey]int{},
		tuples: map[string]int{},
	}
}

// View interns the full-information view "previous view prev, then
// received recv" (recv is a view id, a tuple id, or -1 for null).
func (in *Interner) View(prev, recv int) int {
	k := viewKey{prev, recv}
	if in.parent != nil {
		if id, ok := in.parent.views[k]; ok {
			return id
		}
	}
	if id, ok := in.views[k]; ok {
		return id
	}
	id := in.next
	in.next++
	in.views[k] = id
	in.log = append(in.log, internEntry{a: prev, b: recv})
	return id
}

// Tuple interns a vector of received view ids (-1 entries for dropped
// messages). The caller may reuse vals after the call returns.
func (in *Interner) Tuple(vals []int) int {
	b := in.keyBuf[:0]
	for _, v := range vals {
		b = binary.AppendVarint(b, int64(v))
	}
	in.keyBuf = b
	if in.parent != nil {
		if id, ok := in.parent.tuples[string(b)]; ok {
			return id
		}
	}
	if id, ok := in.tuples[string(b)]; ok {
		return id
	}
	id := in.next
	in.next++
	in.tuples[string(b)] = id
	off := len(in.arena)
	in.arena = append(in.arena, vals...)
	in.log = append(in.log, internEntry{tuple: true, a: off, b: len(vals)})
	return id
}

// NumIDs returns the number of ids assigned by this interner chain.
func (in *Interner) NumIDs() int { return in.next }

// absorb replays a child interner's creation log against in,
// canonicalizing every locally assigned id. It returns trans with
// trans[id-child.base] = canonical id. Log order guarantees that any id
// referenced by an entry's key was created (hence translated) earlier.
func (in *Interner) absorb(child *Interner) []int {
	trans := make([]int, len(child.log))
	tr := func(id int) int {
		if id >= child.base {
			return trans[id-child.base]
		}
		return id
	}
	var buf []int
	for i, e := range child.log {
		if e.tuple {
			buf = buf[:0]
			for _, v := range child.arena[e.a : e.a+e.b] {
				buf = append(buf, tr(v))
			}
			trans[i] = in.Tuple(buf)
		} else {
			trans[i] = in.View(tr(e.a), tr(e.b))
		}
	}
	return trans
}

// EachView calls f for every interned view (prev, recv) → id, in
// creation order. Tuples are skipped. Only meaningful on a root
// interner (base 0), where ids equal log positions.
func (in *Interner) EachView(f func(prev, recv, id int)) {
	for i, e := range in.log {
		if !e.tuple {
			f(e.a, e.b, in.base+i)
		}
	}
}
