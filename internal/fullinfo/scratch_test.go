package fullinfo

import (
	"context"
	"errors"
	"testing"
)

// triStepper is a three-action two-process toy (deliver both, drop
// both, deliver 0→1 only) shaped differently from binStepper, so
// interleaving the two through one Scratch catches stale arena state.
type triStepper struct{}

func (triStepper) NumProcs() int     { return 2 }
func (triStepper) NumActions() int   { return 3 }
func (triStepper) Root() (int, bool) { return 0, true }
func (triStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	r0, r1 := -1, -1
	switch a {
	case 0:
		r0, r1 = views[1], views[0]
	case 2:
		r1 = views[0]
	}
	next[0] = ctx.In.View(views[0], r0)
	next[1] = ctx.In.View(views[1], r1)
	return 0, true
}

// forgetStepper drops without recording the null reception, so distinct
// histories collapse under dedup and multiplicities materialize —
// covering the Scratch's mults arena.
type forgetStepper struct{}

func (forgetStepper) NumProcs() int     { return 2 }
func (forgetStepper) NumActions() int   { return 2 }
func (forgetStepper) Root() (int, bool) { return 0, true }
func (forgetStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	if a == 0 {
		next[0] = ctx.In.View(views[0], views[1])
		next[1] = ctx.In.View(views[1], views[0])
	} else {
		next[0] = views[0]
		next[1] = views[1]
	}
	return 0, true
}

// scratchCases is the stepper/horizon matrix the differential tests
// sweep; the mix of shapes is what stresses arena reset.
var scratchCases = []struct {
	name string
	st   Stepper
	r    int
}{
	{"bin0", binStepper{}, 0},
	{"bin4", binStepper{}, 4},
	{"tri3", triStepper{}, 3},
	{"forget5", forgetStepper{}, 5},
	{"dead3", deadStepper{}, 3},
	{"bin6", binStepper{}, 6},
	{"tri5", triStepper{}, 5},
}

func TestScratchRunCheckedDifferential(t *testing.T) {
	for _, par := range []bool{false, true} {
		scr := NewScratch()
		// One shared Scratch across the whole interleaved sequence.
		for _, tc := range scratchCases {
			opt := Options{Parallel: par, Workers: 4, SplitDepth: 1}
			want, _, err := RunChecked(context.Background(), tc.st, tc.r, opt)
			if err != nil {
				t.Fatalf("%s fresh: %v", tc.name, err)
			}
			opt.Scratch = scr
			got, _, err := RunChecked(context.Background(), tc.st, tc.r, opt)
			if err != nil {
				t.Fatalf("%s scratch: %v", tc.name, err)
			}
			if got != want {
				t.Fatalf("%s parallel=%v: scratch %+v != fresh %+v", tc.name, par, got, want)
			}
			if scr.inUse {
				t.Fatalf("%s: scratch still marked in use after RunChecked", tc.name)
			}
		}
	}
}

func TestScratchEngineDifferential(t *testing.T) {
	scr := NewScratch()
	for _, tc := range scratchCases {
		for _, par := range []bool{false, true} {
			fresh := NewEngine(tc.st, Options{Parallel: par, Workers: 4})
			reused := NewEngine(tc.st, Options{Parallel: par, Workers: 4, Scratch: scr})
			for r := 0; r <= tc.r; r++ {
				want, err := fresh.ExtendTo(context.Background(), r)
				if err != nil {
					t.Fatalf("%s fresh r=%d: %v", tc.name, r, err)
				}
				got, err := reused.ExtendTo(context.Background(), r)
				if err != nil {
					t.Fatalf("%s scratch r=%d: %v", tc.name, r, err)
				}
				if got != want {
					t.Fatalf("%s parallel=%v r=%d: scratch %+v != fresh %+v", tc.name, par, r, got, want)
				}
			}
			reused.Release()
		}
	}
}

// TestScratchEngineParallelRounds pushes the frontier past
// parMinFrontier so growPar (and the child-fork freelist) actually
// runs, twice through the same Scratch.
func TestScratchEngineParallelRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("large frontier")
	}
	const r = 12 // frontier 4·2^12 = 16384 ≥ parMinFrontier
	want, _, err := RunChecked(context.Background(), binStepper{}, r, Options{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	scr := NewScratch()
	for pass := 0; pass < 2; pass++ {
		eng := NewEngine(binStepper{}, Options{Parallel: true, Workers: 4, Scratch: scr})
		got, err := eng.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		eng.Release()
		if got != want {
			t.Fatalf("pass %d: scratch %+v != fresh %+v", pass, got, want)
		}
	}
}

func TestScratchInUseFallsBack(t *testing.T) {
	scr := NewScratch()
	if !scr.acquire() {
		t.Fatal("fresh scratch did not acquire")
	}
	// The arena is busy: runs must fall back to fresh allocation and
	// still be correct, leaving the arena claimed by its real owner.
	want, _, _ := RunChecked(context.Background(), binStepper{}, 4, Options{})
	got, _, err := RunChecked(context.Background(), binStepper{}, 4, Options{Scratch: scr})
	if err != nil || got != want {
		t.Fatalf("busy-scratch run: got %+v, %v; want %+v", got, err, want)
	}
	if !scr.inUse {
		t.Fatal("fallback run released a scratch it did not own")
	}
	scr.release()
}

func TestEngineUseAfterRelease(t *testing.T) {
	scr := NewScratch()
	eng := NewEngine(binStepper{}, Options{Scratch: scr})
	if _, err := eng.ExtendTo(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	eng.Release()
	if _, err := eng.ExtendTo(context.Background(), 3); !errors.Is(err, errEngineReleased) {
		t.Fatalf("ExtendTo after Release: err=%v, want errEngineReleased", err)
	}
	// The arena must be reusable by the next run.
	eng2 := NewEngine(binStepper{}, Options{Scratch: scr})
	if eng2.scr != scr {
		t.Fatal("scratch not re-acquirable after Release")
	}
	eng2.Release()
}

func TestScratchBuildGraphIgnored(t *testing.T) {
	scr := NewScratch()
	res, g, err := RunChecked(context.Background(), binStepper{}, 3,
		Options{BuildGraph: true, Scratch: scr})
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.NumVertices() != res.Vertices {
		t.Fatalf("BuildGraph result malformed: %+v, graph %v", res, g)
	}
	if scr.inUse {
		t.Fatal("BuildGraph run claimed the scratch")
	}
	// A later scratch run must not corrupt the retained graph's counts.
	if _, _, err := RunChecked(context.Background(), binStepper{}, 5, Options{Scratch: scr}); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != res.Vertices {
		t.Fatal("scratch run mutated a retained BuildGraph result")
	}
}
