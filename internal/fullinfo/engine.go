// Package fullinfo is the shared parallel, streaming engine behind every
// bounded-round full-information solvability analysis in this repository
// (internal/chain for two processes, internal/nchain for n processes on
// K_n or an arbitrary graph).
//
// The analyses all have the same shape: walk the tree of admissible
// r-round failure histories for every input assignment, intern each
// process's full-information view at every node, and decide whether some
// connected component of the "shares a view" relation contains both an
// all-0-input and an all-1-input leaf configuration. The engine factors
// that shape out behind the Stepper interface and makes it fast:
//
//   - Callers compile their admissibility oracle into integer state
//     (scheme.PrefixDFA) so a tree edge is a slice lookup, not an oracle
//     clone.
//
//   - The walk is an iterative DFS over reusable scratch buffers — no
//     per-node allocation — and fans out at a configurable split depth:
//     the tree is expanded breadth-first to the split depth, then the
//     frontier subtrees are distributed over a worker pool.
//
//   - Each worker interns views in a worker-local Interner forked from
//     the shared prefix interner, and streams every leaf straight into a
//     worker-local union-find keyed by (process, view) — leaf
//     configurations are never materialized. Worker ids are
//     canonicalized into the shared id space when the pools merge.
//
//   - Components carry unanimous-0/1 flags, so a mixed component is
//     detected the moment it forms; with Options.EarlyExit the whole
//     pool aborts on the first one (the scheme is then provably not
//     r-round solvable, and callers asking only for the boolean need
//     nothing more).
//
// Correctness note: the engine counts components of the (process, view)
// vertex graph in which every leaf configuration links all of its
// vertices. Each configuration's vertices form one clique, and every
// vertex belongs to some configuration, so these components are in
// bijection with the components of the configuration
// indistinguishability graph that the materializing reference
// implementations (chain.AnalyzeSequential, nchain.AnalyzeSequential)
// compute — the differential tests in those packages pin this.
package fullinfo

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Stepper defines one full-information analysis problem: a process
// count, a finite action alphabet (letters, loss patterns, …), an
// admissibility automaton over integer states, and the per-round view
// update. Implementations must be safe for concurrent use by multiple
// workers; per-call scratch comes from the Ctx.
type Stepper interface {
	// NumProcs returns the number of processes n (views per node).
	NumProcs() int
	// NumActions returns the size of the action alphabet.
	NumActions() int
	// Root returns the initial automaton state, or ok=false when no
	// history at all is admissible (empty scheme).
	Root() (state int, ok bool)
	// Step applies action a in automaton state state: it writes the n
	// next views into next (interning through ctx) and returns the
	// successor state, or ok=false when the action is inadmissible.
	// views holds the n current views and must not be modified.
	Step(ctx *Ctx, state, a int, views, next []int) (nextState int, ok bool)
}

// Ctx carries a worker's interner and reusable scratch space into
// Stepper.Step.
type Ctx struct {
	In  *Interner
	buf []int
	// View memo ring (see Ctx.View). Zero keys never match: packView
	// is never zero.
	memoK   [ctxMemoCap]uint64
	memoV   [ctxMemoCap]int32
	memoPos uint32
}

// ctxMemoCap is the View memo ring size (power of two). Eight entries
// cover the repeated keys of an action loop: the two-process stepper
// touches at most four distinct (prev, recv) pairs per node.
const ctxMemoCap = 8

// resetMemo empties the View memo ring. Required when the Ctx's
// interner is reset for a new run: memoized ids from the previous run
// would otherwise alias the new id space.
func (c *Ctx) resetMemo() {
	c.memoK = [ctxMemoCap]uint64{}
	c.memoPos = 0
}

// Buf returns a length-n scratch slice reused across calls.
func (c *Ctx) Buf(n int) []int {
	if cap(c.buf) < n {
		c.buf = make([]int, n)
	}
	return c.buf[:n]
}

// View is In.View behind a small per-Ctx memo ring. Steppers whose
// action loop re-derives the same few (prev, recv) pairs — the
// two-process chain asks for each of its four at most twice — resolve
// repeats from registers instead of re-probing the interner table.
// Entries never go stale: a Ctx's interner chain is append-only for
// the Ctx's lifetime, so a memoized id stays the canonical answer.
func (c *Ctx) View(prev, recv int) int {
	k := packView(prev, recv)
	for i := range c.memoK {
		if c.memoK[i] == k {
			return int(c.memoV[i])
		}
	}
	id := c.In.View(prev, recv)
	i := c.memoPos & (ctxMemoCap - 1)
	c.memoK[i] = k
	c.memoV[i] = int32(id)
	c.memoPos++
	return id
}

// Options configures an engine run.
type Options struct {
	// Backend selects the analysis backend: BackendAuto (the zero
	// value) lets chain-structured problems run symbolically and
	// everything else enumerate, BackendEnumerate forces per-history
	// enumeration, BackendSymbolic insists on the symbolic backend and
	// records every forced degradation in Stats.SymbolicFallbacks.
	Backend BackendMode
	// SymbolicMaxIntervals overrides the symbolic backend's
	// fragmentation threshold (total (state, interval) pairs before it
	// abandons the run to enumeration); ≤ 0 means the default.
	SymbolicMaxIntervals int
	// Parallel fans the walk out over a worker pool. When false the
	// whole tree is walked by a single worker (still streaming, still
	// early-exiting).
	Parallel bool
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// SplitDepth is the tree depth at which subtrees are handed to
	// workers; ≤ 0 picks the smallest depth whose frontier is at least
	// subtreesPerWorker times the pool size.
	SplitDepth int
	// EarlyExit aborts the run on the first mixed component. The
	// returned counts are then partial (Exhaustive=false), but
	// Solvable=false is exact.
	EarlyExit bool
	// BuildGraph retains the merged interner and component structure so
	// callers (algorithm synthesis, protocol-complex reports) can read
	// the canonical view table and per-vertex decisions.
	BuildGraph bool
	// Dedup controls hash-consed frontier deduplication: nodes with
	// identical (state, inputs, views) collapse into one configuration
	// carrying an int64 multiplicity, so Configs stays exact while the
	// live frontier shrinks to the distinct-configuration count.
	Dedup DedupMode
	// Observer, when non-nil, receives a Stats snapshot after every
	// completed run (Run/RunChecked) or incremental round
	// (Engine.Extend). It is called synchronously on the calling
	// goroutine; keep it cheap.
	Observer func(Stats)
	// Scratch, when non-nil, recycles engine state (interner tables,
	// worker forks, frontier slices, union-finds) across runs. See the
	// Scratch type for the single-run and BuildGraph caveats; results
	// are bit-identical with or without it. RunChecked releases the
	// arena before returning; an Engine holds it until Release.
	Scratch *Scratch
}

// DedupMode selects the frontier deduplication policy.
type DedupMode int

const (
	// DedupAuto dedups every frontier round until the problem proves
	// collapse-free — dedupAutoPatience consecutive rounds where raw ==
	// distinct — then stops paying the probe cost. Multiplicities
	// already accumulated keep propagating, so results stay exact.
	// Full-information steppers that record null receptions (all of
	// this repository's) are history-injective and settle into the
	// no-dedup fast path; steppers whose views forget structure keep
	// collapsing. The zero value, hence the default everywhere.
	DedupAuto DedupMode = iota
	// DedupOn dedups every round unconditionally.
	DedupOn
	// DedupOff never dedups; every admissible history is a frontier
	// node, as in the pre-dedup engine.
	DedupOff
)

// dedupAutoPatience is how many consecutive collapse-free rounds
// DedupAuto tolerates before switching the probe off.
const dedupAutoPatience = 2

// Defaults returns the standard engine configuration: parallel across
// all CPUs, exhaustive, no graph retention.
func Defaults() Options { return Options{Parallel: true} }

// subtreesPerWorker is the auto split-depth fan-out target: enough
// subtrees per worker that uneven subtree sizes still balance.
const subtreesPerWorker = 8

// Result is the outcome of an engine run.
type Result struct {
	// Configs is the number of leaf configurations explored, saturated
	// at math.MaxInt64 when the true count no longer fits (only the
	// symbolic backend can reach such horizons — see ConfigsExact).
	Configs int64
	// ConfigsExact is the exact configuration count when it exceeds
	// int64 range; nil otherwise (Configs is then already exact). Kept
	// nil in-range so Result stays comparable with == and small-horizon
	// differential tests compare backends structurally.
	ConfigsExact *big.Int
	// Vertices is the number of distinct (process, view) pairs.
	Vertices int
	// Components is the number of connected components.
	Components int
	// MixedComponents counts components holding both an all-0 and an
	// all-1 leaf; the problem is r-round solvable iff it is zero.
	MixedComponents int
	// Solvable is MixedComponents == 0.
	Solvable bool
	// Exhaustive is false when EarlyExit aborted the walk; counts are
	// then lower bounds (Solvable remains exact).
	Exhaustive bool
}

// Graph is the merged analysis structure retained by BuildGraph.
type Graph struct {
	in   *Interner
	uf   *compUF
	keys []int64
}

// EachView calls f for every canonical view transition
// (prev, recv) → id. For two-process problems recv is the peer's view id
// or -1; for n-process problems it is a received-views tuple id.
func (g *Graph) EachView(f func(prev, recv, id int)) { g.in.EachView(f) }

// EachVertex calls f for every (process, view) vertex with its
// component's unanimity flags.
func (g *Graph) EachVertex(f func(proc, view int, has0, has1 bool)) {
	for i, k := range g.keys {
		fl := g.uf.flag[g.uf.find(int32(i))]
		f(int(k&vertProcMask), int(k>>vertProcBits), fl&flagHas0 != 0, fl&flagHas1 != 0)
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.keys) }

// Vertex keys pack (process, view) into an int64: low bits process,
// high bits (arithmetically shifted, so sentinel views stay distinct)
// the view id.
const (
	vertProcBits = 6
	vertProcMask = 1<<vertProcBits - 1
)

func vertexKey(proc, view int) int64 {
	return int64(view)<<vertProcBits | int64(proc)
}

// node is one frontier entry: an automaton state, the n current views,
// the input assignment bitmask the subtree belongs to, and the number
// of raw (undeduplicated) histories this configuration stands for.
type node struct {
	state  int
	inputs int
	mult   int64
	views  []int
}

// eq reports whether nd denotes the same configuration as (state,
// inputs, views).
func (nd *node) eq(state, inputs int, views []int) bool {
	if nd.state != state || nd.inputs != inputs {
		return false
	}
	for i, v := range nd.views {
		if v != views[i] {
			return false
		}
	}
	return true
}

// worker holds one pool member's private state: a forked interner, the
// streaming union-find, and the DFS scratch buffers.
type worker struct {
	st     Stepper
	ctx    *Ctx
	n, na  int
	all1   int
	height int

	uf      compUF
	verts   flatU64
	keys    []int64
	configs int64

	views  []int // (height+1) rows of n views
	states []int
	acts   []int
}

func newWorker(st Stepper, shared *Interner, height int) *worker {
	n := st.NumProcs()
	return &worker{
		st:     st,
		ctx:    &Ctx{In: NewInterner(shared)},
		n:      n,
		na:     st.NumActions(),
		all1:   1<<n - 1,
		height: height,
		views:  make([]int, (height+1)*n),
		states: make([]int, height+1),
		acts:   make([]int, height+1),
	}
}

// vertex interns a (process, view) pair as a union-find index.
func (w *worker) vertex(proc, view int) int32 {
	k := vertexKey(proc, view)
	id, slot, hit := w.verts.probe(packVertex(k))
	if hit {
		return id
	}
	id = w.uf.add()
	w.verts.setAt(slot, packVertex(k), id)
	w.keys = append(w.keys, k)
	return id
}

// leaf streams one leaf configuration into the union-find: all its
// vertices join one component, which inherits the unanimity flags.
// mult is the configuration's multiplicity: how many raw histories the
// dedup'd subtree root stood for.
func (w *worker) leaf(views []int, has0, has1 bool, mult int64) {
	w.configs += mult
	root := w.uf.find(w.vertex(0, views[0]))
	for i := 1; i < len(views); i++ {
		root = w.uf.union(root, w.vertex(i, views[i]))
	}
	if has0 {
		w.uf.mark(root, flagHas0)
	}
	if has1 {
		w.uf.mark(root, flagHas1)
	}
}

// walk runs the iterative DFS over one frontier subtree.
func (w *worker) walk(nd node, earlyExit bool, abort *atomic.Bool) {
	n := w.n
	copy(w.views[:n], nd.views)
	w.states[0] = nd.state
	w.acts[0] = 0
	has0 := nd.inputs == 0
	has1 := nd.inputs == w.all1
	depth := 0
	for depth >= 0 {
		if depth == w.height {
			w.leaf(w.views[depth*n:(depth+1)*n], has0, has1, nd.mult)
			if earlyExit && (w.uf.mixed > 0 || abort.Load()) {
				abort.Store(true)
				return
			}
			depth--
			continue
		}
		a := w.acts[depth]
		if a == w.na {
			depth--
			continue
		}
		w.acts[depth] = a + 1
		ns, ok := w.st.Step(w.ctx, w.states[depth], a,
			w.views[depth*n:(depth+1)*n], w.views[(depth+1)*n:(depth+2)*n])
		if !ok {
			continue
		}
		depth++
		w.states[depth] = ns
		w.acts[depth] = 0
	}
}

// Run executes the full-information analysis at horizon r. The returned
// Graph is nil unless opt.BuildGraph is set. A panicking Stepper
// re-panics on the calling goroutine (wrapped with the worker's
// diagnostics); use RunChecked for an error instead.
func Run(st Stepper, r int, opt Options) (Result, *Graph) {
	res, g, err := RunChecked(context.Background(), st, r, opt)
	if err != nil {
		panic(err.Error())
	}
	return res, g
}

// RunChecked is Run with fail-closed behavior: a Stepper that panics on
// any worker is recovered (the first panic's value and stack become the
// returned error, and the pool aborts), and the context cancels the walk
// at the next subtree boundary (the error is then ctx.Err() and the
// partial Result has Exhaustive=false).
func RunChecked(ctx context.Context, st Stepper, r int, opt Options) (Result, *Graph, error) {
	start := time.Now()
	if r < 0 {
		r = 0
	}

	// Symbolic dispatch: chain-structured problems short-circuit the
	// whole walk unless the caller forces enumeration or needs the
	// retained graph. A fragmented symbolic attempt falls through to
	// the enumerating phases below with the fallback recorded.
	symFB := 0
	if sym := symEngineFor(st, opt); sym != nil {
		res, err := sym.extendTo(ctx, r)
		if err == nil {
			if opt.Observer != nil {
				opt.Observer(sym.stats(res, r, start, 0))
			}
			return res, nil, nil
		}
		if !errors.Is(err, errSymbolicFragmented) {
			return Result{}, nil, err
		}
		symFB = 1
	} else if opt.Backend == BackendSymbolic {
		symFB = 1
	}

	n := st.NumProcs()
	na := st.NumActions()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !opt.Parallel {
		workers = 1
	}

	// Arena reuse: the BuildGraph result would alias recycled storage,
	// so the scratch only engages without it (and when not already
	// serving another run).
	scr := opt.Scratch
	if opt.BuildGraph || !scr.acquire() {
		scr = nil
	} else {
		defer scr.release()
	}
	var shared *Interner
	var sctx *Ctx
	if scr != nil {
		sctx = scr.rootCtxFor(false)
		shared = sctx.In
	} else {
		shared = NewInterner(nil)
		sctx = &Ctx{In: shared}
	}

	// Roots: one subtree per input assignment.
	var frontier []node
	if start, ok := st.Root(); ok {
		for inputs := 0; inputs < 1<<n; inputs++ {
			views := make([]int, n)
			for i := 0; i < n; i++ {
				views[i] = InitView((inputs >> i) & 1)
			}
			frontier = append(frontier, node{state: start, inputs: inputs, mult: 1, views: views})
		}
	}

	// Phase 1: expand breadth-first on the shared interner, hash-consing
	// each level per opt.Dedup. The BFS keeps going as long as dedup is
	// productive (always for DedupOn; for DedupAuto until the frontier
	// proves collapse-free — hash-consing needs a global view of the
	// level, so it must happen here, not in the per-subtree pool walk);
	// once dedup is off, the split heuristics decide when the pool takes
	// over. Stepper panics here surface as an error, like on the pool.
	depth := 0
	var dt dedupTable
	var frontRaw, frontDistinct int64
	cleanRounds := 0
	if err := func() (err error) {
		defer recoverStepper(&err)
		for depth < r && len(frontier) > 0 {
			dedup := opt.Dedup == DedupOn ||
				(opt.Dedup == DedupAuto && cleanRounds < dedupAutoPatience)
			if !dedup {
				if opt.SplitDepth > 0 {
					if depth >= opt.SplitDepth {
						break
					}
				} else if workers == 1 || len(frontier) >= workers*subtreesPerWorker {
					break
				}
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if dedup {
				dt.reset(len(frontier) * na)
			}
			next := make([]node, 0, len(frontier)*na)
			var raw int64
			for _, nd := range frontier {
				for a := 0; a < na; a++ {
					nv := make([]int, n)
					ns, ok := st.Step(sctx, nd.state, a, nd.views, nv)
					if !ok {
						continue
					}
					if dedup {
						raw += nd.mult
						h := hashConfig(ns, nd.inputs, nv)
						idx, slot := dt.find(h, func(j int32) bool {
							return next[j].eq(ns, nd.inputs, nv)
						})
						if idx >= 0 {
							next[idx].mult += nd.mult
							continue
						}
						dt.claim(slot, int32(len(next)))
					}
					next = append(next, node{state: ns, inputs: nd.inputs, mult: nd.mult, views: nv})
				}
			}
			if dedup {
				frontRaw += raw
				frontDistinct += int64(len(next))
				if raw == int64(len(next)) {
					cleanRounds++
				} else {
					cleanRounds = 0
				}
			}
			frontier = next
			depth++
		}
		return nil
	}(); err != nil {
		return Result{}, nil, err
	}

	if len(frontier) == 0 {
		res := Result{Solvable: true, Exhaustive: true}
		var g *Graph
		if opt.BuildGraph {
			g = &Graph{in: shared, uf: &compUF{}}
		}
		if opt.Observer != nil {
			opt.Observer(Stats{
				Horizon:           r,
				Rounds:            r,
				ViewsInterned:     shared.NumIDs(),
				NewViews:          shared.NumIDs(),
				Workers:           workers,
				FrontierRaw:       frontRaw,
				FrontierDistinct:  frontDistinct,
				SymbolicFallbacks: symFB,
				WallNanos:         time.Since(start).Nanoseconds(),
			})
		}
		return res, g, nil
	}

	// Phase 2: the pool walks frontier subtrees, streaming leaves into
	// worker-local union-finds.
	if workers > len(frontier) {
		workers = len(frontier)
	}
	pool := make([]*worker, workers)
	for i := range pool {
		if scr != nil {
			pool[i] = scr.workerFor(i, st, shared, r-depth)
		} else {
			pool[i] = newWorker(st, shared, r-depth)
		}
	}
	var abort atomic.Bool
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abort.Store(true)
	}
	for _, w := range pool {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					fail(fmt.Errorf("fullinfo: Stepper panicked on worker: %v\n%s", p, debug.Stack()))
				}
			}()
			for !abort.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := cursor.Add(1) - 1
				if i >= int64(len(frontier)) {
					return
				}
				w.walk(frontier[i], opt.EarlyExit, &abort)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{Exhaustive: false}, nil, firstErr
	}

	// Phase 3: merge. Worker ids are canonicalized into the shared
	// interner; worker components are replayed into a global union-find.
	guf := &compUF{}
	var gverts flatU64
	var gkeys []int64
	if scr != nil {
		var gv *flatU64
		guf, gv, gkeys = scr.mergeScratch()
		gverts = *gv
		defer func() {
			// Hand grown merge storage back to the arena.
			scr.gverts = gverts
			scr.gkeys = gkeys
		}()
	}
	var configs int64
	var absorbed int
	for _, w := range pool {
		configs += w.configs
		trans := shared.absorb(w.ctx.In)
		absorbed += len(trans)
		base := w.ctx.In.base
		gid := make([]int32, len(w.keys))
		for i, k := range w.keys {
			view := int(k >> vertProcBits)
			if view >= base {
				view = trans[view-base]
			}
			gk := vertexKey(int(k&vertProcMask), view)
			id, ok := gverts.get(packVertex(gk))
			if !ok {
				id = guf.add()
				gverts.put(packVertex(gk), id)
				gkeys = append(gkeys, gk)
			}
			gid[i] = id
		}
		for i := range w.keys {
			guf.union(gid[i], gid[w.uf.find(int32(i))])
		}
		for i := range w.keys {
			if w.uf.parent[i] == int32(i) && w.uf.flag[i] != 0 {
				guf.mark(gid[i], w.uf.flag[i])
			}
		}
	}

	res := Result{
		Configs:         configs,
		Vertices:        len(gkeys),
		Components:      guf.roots,
		MixedComponents: guf.mixed,
		Solvable:        guf.mixed == 0,
		Exhaustive:      !abort.Load(),
	}
	var g *Graph
	if opt.BuildGraph {
		g = &Graph{in: shared, uf: guf, keys: gkeys}
	}
	if opt.Observer != nil {
		opt.Observer(Stats{
			Horizon:           r,
			Rounds:            r,
			Configs:           configs,
			Vertices:          res.Vertices,
			Components:        res.Components,
			MixedComponents:   res.MixedComponents,
			Merges:            res.Vertices - res.Components,
			ViewsInterned:     shared.NumIDs(),
			NewViews:          shared.NumIDs(),
			Workers:           workers,
			WorkerForks:       len(pool),
			Absorbed:          absorbed,
			Subtrees:          len(frontier),
			FrontierRaw:       frontRaw,
			FrontierDistinct:  frontDistinct,
			SymbolicFallbacks: symFB,
			WallNanos:         time.Since(start).Nanoseconds(),
		})
	}
	return res, g, nil
}

// recoverStepper converts a Stepper panic into an error carrying the
// panic value and stack.
func recoverStepper(errp *error) {
	if p := recover(); p != nil {
		*errp = fmt.Errorf("fullinfo: Stepper panicked: %v\n%s", p, debug.Stack())
	}
}
