package fullinfo

// Scratch is an arena of engine state — the root interner's shard
// tables, worker forks with their child interners, the incremental
// frontier's parallel slices, and the leaf-scan union-find — reused
// across runs instead of reallocated per call. A service handling a
// stream of cache-miss requests hands the same Scratch (typically from
// a sync.Pool) to each one via Options.Scratch and the flat tables
// grow to the workload's high-water mark once.
//
// A Scratch serves one run at a time. Concurrent runs need one Scratch
// each; handing an in-use Scratch to a second run is detected and the
// second run silently falls back to fresh allocation (no sharing, no
// corruption). Options.BuildGraph also disables the Scratch for that
// run: the retained Graph would alias arena storage that the next run
// recycles.
//
// Results are bit-identical with and without a Scratch — the reset
// paths restore exactly the state a fresh allocation starts from, and
// the differential tests in scratch_test.go pin this.
type Scratch struct {
	root    *Interner
	rootCtx Ctx
	kids    []*Interner // child-fork freelist (growPar chunks)
	kidN    int
	workers []*worker // RunChecked pool

	// RunChecked phase-3 merge scratch.
	guf    compUF
	gverts flatU64
	gkeys  []int64

	// Incremental engine arenas (see Engine).
	states, spStates []int
	inputs, spInputs []int32
	views, spViews   []int
	mults, spMults   []int64
	growBuf          []int
	dt               dedupTable
	uf               compUF
	vert             []int32

	inUse bool
}

// NewScratch returns an empty arena. The zero value is not usable;
// always construct through here (future fields may need init).
func NewScratch() *Scratch { return &Scratch{} }

// acquire claims the arena for one run. It returns false when the
// arena is already serving a run, in which case the caller must
// allocate fresh state instead.
func (s *Scratch) acquire() bool {
	if s == nil || s.inUse {
		return false
	}
	s.inUse = true
	s.kidN = 0
	return true
}

// release returns the arena to the idle state. Idempotent.
func (s *Scratch) release() {
	if s != nil {
		s.inUse = false
	}
}

// rootInterner returns the reusable root interner, reset for a fresh
// run with the given logging mode.
func (s *Scratch) rootInterner(logging bool) *Interner {
	if s.root == nil {
		s.root = newInterner(nil, logging)
	} else {
		s.root.resetRoot(logging)
	}
	return s.root
}

// rootCtxFor wraps the reusable root interner in the reusable root Ctx.
func (s *Scratch) rootCtxFor(logging bool) *Ctx {
	s.rootCtx.In = s.rootInterner(logging)
	s.rootCtx.buf = s.rootCtx.buf[:0]
	s.rootCtx.resetMemo()
	return &s.rootCtx
}

// childInterner hands out the next child fork of parent from the
// freelist, extending it on demand. Forks are recycled per round
// (resetKids); a fork must be fully absorbed before the next reset.
func (s *Scratch) childInterner(parent *Interner) *Interner {
	if s.kidN < len(s.kids) {
		k := s.kids[s.kidN]
		s.kidN++
		k.resetChild(parent)
		return k
	}
	k := NewInterner(parent)
	s.kids = append(s.kids, k)
	s.kidN++
	return k
}

// resetKids recycles every handed-out child fork for the next round.
func (s *Scratch) resetKids() { s.kidN = 0 }

// workerFor returns pool slot i prepared for a fresh run: the child
// interner re-forked from shared, the union-find, vertex table, and
// DFS scratch all reset with capacity retained.
func (s *Scratch) workerFor(i int, st Stepper, shared *Interner, height int) *worker {
	for len(s.workers) <= i {
		s.workers = append(s.workers, nil)
	}
	w := s.workers[i]
	if w == nil {
		w = newWorker(st, shared, height)
		s.workers[i] = w
		return w
	}
	n := st.NumProcs()
	w.st = st
	w.n = n
	w.na = st.NumActions()
	w.all1 = 1<<n - 1
	w.height = height
	w.ctx.In.resetChild(shared)
	w.ctx.resetMemo()
	w.uf.reset()
	w.verts.reset()
	w.keys = w.keys[:0]
	w.configs = 0
	w.views = sliceLen(w.views, (height+1)*n)
	w.states = sliceLen(w.states, height+1)
	w.acts = sliceLen(w.acts, height+1)
	return w
}

// mergeScratch returns the phase-3 merge structures, reset.
func (s *Scratch) mergeScratch() (*compUF, *flatU64, []int64) {
	s.guf.reset()
	s.gverts.reset()
	return &s.guf, &s.gverts, s.gkeys[:0]
}

// sliceLen returns a length-n slice reusing s's storage when possible.
// Contents are unspecified; callers must write before reading.
func sliceLen[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
