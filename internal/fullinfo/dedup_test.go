package fullinfo

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// collapseStepper is a toy problem whose frontier genuinely collapses
// under hash-consing: actions 0 and 1 are indistinguishable all-drop
// rounds (identical state and views), action 2 delivers both messages.
// After r rounds every surviving configuration carries multiplicity
// 2^(number of drop rounds), so raw and distinct frontier counts
// diverge while Configs must stay the raw 4·3^r.
type collapseStepper struct{}

func (collapseStepper) NumProcs() int     { return 2 }
func (collapseStepper) NumActions() int   { return 3 }
func (collapseStepper) Root() (int, bool) { return 0, true }
func (collapseStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	r0, r1 := -1, -1
	if a == 2 {
		r0, r1 = views[1], views[0]
	}
	next[0] = ctx.View(views[0], r0)
	next[1] = ctx.View(views[1], r1)
	return 0, true
}

func pow3(r int) int64 {
	v := int64(1)
	for i := 0; i < r; i++ {
		v *= 3
	}
	return v
}

func TestEngineDedupCollapsesMultiplicity(t *testing.T) {
	for _, mode := range []DedupMode{DedupAuto, DedupOn} {
		var last Stats
		eng := NewEngine(collapseStepper{}, Options{
			Dedup:    mode,
			Observer: func(s Stats) { last = s },
		})
		for r := 0; r <= 5; r++ {
			got, err := eng.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatalf("mode=%d r=%d: %v", mode, r, err)
			}
			want, _ := Run(collapseStepper{}, r, Options{})
			if got != want {
				t.Fatalf("mode=%d r=%d: dedup %+v != reference %+v", mode, r, got, want)
			}
			if got.Configs != 4*pow3(r) {
				t.Fatalf("mode=%d r=%d: Configs=%d want %d", mode, r, got.Configs, 4*pow3(r))
			}
			if r >= 1 {
				// Each round triples raw nodes but only doubles distinct
				// ones (two of three actions coincide).
				if last.FrontierRaw <= last.FrontierDistinct {
					t.Fatalf("mode=%d r=%d: raw=%d distinct=%d, expected collapse",
						mode, r, last.FrontierRaw, last.FrontierDistinct)
				}
				if eng.FrontierLen() != int(4*pow2(r)) {
					t.Fatalf("mode=%d r=%d: frontier holds %d nodes, want %d distinct",
						mode, r, eng.FrontierLen(), 4*pow2(r))
				}
			}
		}
	}
}

func TestEngineDedupModesAgree(t *testing.T) {
	for _, st := range []Stepper{collapseStepper{}, binStepper{}} {
		ref := NewEngine(st, Options{Dedup: DedupOff})
		on := NewEngine(st, Options{Dedup: DedupOn})
		auto := NewEngine(st, Options{})
		for r := 0; r <= 6; r++ {
			want, err := ref.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			gotOn, err := on.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			gotAuto, err := auto.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if gotOn != want || gotAuto != want {
				t.Fatalf("%T r=%d: off %+v on %+v auto %+v", st, r, want, gotOn, gotAuto)
			}
		}
	}
}

func TestEngineDedupOffReportsNoFrontier(t *testing.T) {
	var last Stats
	eng := NewEngine(collapseStepper{}, Options{Dedup: DedupOff, Observer: func(s Stats) { last = s }})
	if _, err := eng.ExtendTo(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if last.FrontierRaw != 0 || last.FrontierDistinct != 0 {
		t.Fatalf("DedupOff reported frontier counters: %+v", last)
	}
	if last.DedupRatio() != 1 {
		t.Fatalf("DedupRatio without dedup = %v, want 1", last.DedupRatio())
	}
}

func TestEngineDedupAutoStopsOnInjectiveFrontier(t *testing.T) {
	// binStepper's views are history-injective, so auto mode must stop
	// paying for dedup probes after dedupAutoPatience hit-free rounds:
	// later rounds report no frontier counters at all.
	var snaps []Stats
	eng := NewEngine(binStepper{}, Options{Observer: func(s Stats) { snaps = append(snaps, s) }})
	for r := 1; r <= dedupAutoPatience+3; r++ {
		if _, err := eng.ExtendTo(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range snaps {
		dedup := s.FrontierRaw != 0
		wantDedup := i < dedupAutoPatience
		if dedup != wantDedup {
			t.Fatalf("round %d: dedup ran=%v want %v (%+v)", i+1, dedup, wantDedup, s)
		}
		if s.FrontierRaw != s.FrontierDistinct {
			t.Fatalf("round %d: injective stepper collapsed: %+v", i+1, s)
		}
	}
}

// TestEngineOptionsContract pins the Engine's documented Options
// behavior (see the Engine doc comment).
func TestEngineOptionsContract(t *testing.T) {
	t.Run("workers-resolved", func(t *testing.T) {
		cases := []struct {
			opt  Options
			want int
		}{
			{Options{}, 1},
			{Options{Workers: 8}, 1}, // Workers without Parallel is inert
			{Options{Parallel: true, Workers: 3}, 3},
			{Options{Parallel: true}, runtime.GOMAXPROCS(0)},
		}
		for _, c := range cases {
			var last Stats
			c.opt.Observer = func(s Stats) { last = s }
			eng := NewEngine(binStepper{}, c.opt)
			if _, err := eng.ExtendTo(context.Background(), 1); err != nil {
				t.Fatal(err)
			}
			if last.Workers != c.want {
				t.Fatalf("opt %+v: Workers=%d want %d", c.opt, last.Workers, c.want)
			}
		}
	})

	t.Run("parallel-grow-matches-sequential", func(t *testing.T) {
		// 4·2^10 = 4096 = parMinFrontier, so rounds 11+ take the
		// chunked-worker path; the results must stay bit-identical.
		var last Stats
		seq := NewEngine(binStepper{}, Options{})
		par := NewEngine(binStepper{}, Options{Parallel: true, Workers: 4, Observer: func(s Stats) { last = s }})
		for r := 10; r <= 12; r++ {
			want, err := seq.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("r=%d: parallel %+v != sequential %+v", r, got, want)
			}
		}
		if last.WorkerForks == 0 || last.Absorbed == 0 {
			t.Fatalf("parallel rounds never forked workers: %+v", last)
		}
	})

	t.Run("build-graph-rejected", func(t *testing.T) {
		eng := NewEngine(binStepper{}, Options{BuildGraph: true})
		for i := 0; i < 2; i++ {
			if _, err := eng.ExtendTo(context.Background(), 1); !errors.Is(err, ErrEngineBuildGraph) {
				t.Fatalf("call %d: err=%v want ErrEngineBuildGraph", i, err)
			}
		}
	})

	t.Run("split-depth-ignored", func(t *testing.T) {
		plain := NewEngine(binStepper{}, Options{})
		tuned := NewEngine(binStepper{}, Options{SplitDepth: 5})
		for r := 0; r <= 4; r++ {
			want, err := plain.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tuned.ExtendTo(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("r=%d: SplitDepth changed the result: %+v vs %+v", r, got, want)
			}
		}
	})
}

// fuzzStepper derives a deterministic toy problem from a seed:
// admissibility, delivery pattern, and next state all hash off
// (seed, state, action). Distinct actions frequently map to identical
// children, exercising real multiplicity in the dedup'd engine.
type fuzzStepper struct{ seed uint64 }

func (f fuzzStepper) NumProcs() int     { return 2 }
func (f fuzzStepper) NumActions() int   { return 3 }
func (f fuzzStepper) Root() (int, bool) { return 0, true }
func (f fuzzStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	h := mix64(f.seed ^ uint64(state)<<8 ^ uint64(a))
	if h%8 == 0 {
		return 0, false
	}
	r0, r1 := -1, -1
	if h&1 != 0 {
		r0 = views[1]
	}
	if h&2 != 0 {
		r1 = views[0]
	}
	next[0] = ctx.View(views[0], r0)
	next[1] = ctx.View(views[1], r1)
	return int((h >> 3) % 5), true
}

// FuzzDedupVsReference is the differential oracle for the hash-consed
// frontier: for a seeded random stepper, the dedup'd engine (and the
// dedup'd BFS of RunChecked) must reproduce the non-dedup reference
// analysis exactly.
func FuzzDedupVsReference(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(0xdeadbeef), uint8(5))
	f.Add(uint64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, horizon uint8) {
		r := int(horizon % 6)
		st := fuzzStepper{seed: seed}
		want, _, err := RunChecked(context.Background(), st, r, Options{Dedup: DedupOff})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunChecked(context.Background(), st, r, Options{Dedup: DedupOn})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("RunChecked dedup %+v != reference %+v", got, want)
		}
		eng := NewEngine(st, Options{Dedup: DedupOn})
		inc, err := eng.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if inc != want {
			t.Fatalf("engine dedup %+v != reference %+v", inc, want)
		}
	})
}

func TestInternerTupleHitZeroAllocs(t *testing.T) {
	in := NewInterner(nil)
	vals := []int{7, -1, 3, 12, -1}
	in.Tuple(vals)
	if a := testing.AllocsPerRun(200, func() { in.Tuple(vals) }); a != 0 {
		t.Fatalf("Tuple hit allocates %v/op, want 0", a)
	}
	// Parent hits from a fork stay allocation-free too.
	child := NewInterner(in)
	if a := testing.AllocsPerRun(200, func() { child.Tuple(vals) }); a != 0 {
		t.Fatalf("forked Tuple parent-hit allocates %v/op, want 0", a)
	}
}

func BenchmarkInternerTupleHit(b *testing.B) {
	in := NewInterner(nil)
	vals := []int{7, -1, 3, 12, -1}
	in.Tuple(vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Tuple(vals)
	}
}

func BenchmarkInternerViewHit(b *testing.B) {
	in := NewInterner(nil)
	v := in.View(InitView(0), -1)
	w := in.View(InitView(1), v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.View(InitView(1), w-w+v) // defeat trivial hoisting
	}
}
