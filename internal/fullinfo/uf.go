package fullinfo

// Per-component unanimity flags.
const (
	flagHas0  uint8 = 1 // component contains an all-0-input configuration
	flagHas1  uint8 = 2 // component contains an all-1-input configuration
	flagMixed       = flagHas0 | flagHas1
)

// compUF is a growable disjoint-set structure over (process, view)
// vertices, carrying per-component unanimity flags. It maintains the
// root and mixed-component counts incrementally so the engine can
// early-exit the moment the first mixed component appears, without a
// final scan.
type compUF struct {
	parent []int32
	rank   []int8
	flag   []uint8
	roots  int
	mixed  int
}

// add appends a fresh singleton component and returns its index.
func (u *compUF) add() int32 {
	id := int32(len(u.parent))
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	u.flag = append(u.flag, 0)
	u.roots++
	return id
}

// find returns the canonical root, with path halving.
func (u *compUF) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the components of a and b and returns the surviving root,
// folding unanimity flags and updating the root/mixed counts.
func (u *compUF) union(a, b int32) int32 {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	fa, fb := u.flag[ra], u.flag[rb]
	merged := fa | fb
	u.flag[ra] = merged
	if fa == flagMixed {
		u.mixed--
	}
	if fb == flagMixed {
		u.mixed--
	}
	if merged == flagMixed {
		u.mixed++
	}
	u.roots--
	return ra
}

// reset empties the structure, keeping slice capacity for reuse.
func (u *compUF) reset() {
	u.parent = u.parent[:0]
	u.rank = u.rank[:0]
	u.flag = u.flag[:0]
	u.roots = 0
	u.mixed = 0
}

// mark ors f into x's component flags.
func (u *compUF) mark(x int32, f uint8) {
	r := u.find(x)
	old := u.flag[r]
	merged := old | f
	if merged == old {
		return
	}
	u.flag[r] = merged
	if merged == flagMixed {
		u.mixed++
	}
}
