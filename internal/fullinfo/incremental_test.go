package fullinfo

import (
	"context"
	"strings"
	"testing"
)

func TestEngineExtendMatchesRun(t *testing.T) {
	eng := NewEngine(binStepper{}, Options{})
	for r := 0; r <= 6; r++ {
		got, err := eng.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		want, _ := Run(binStepper{}, r, Options{})
		if got != want {
			t.Fatalf("r=%d: Extend %+v != Run %+v", r, got, want)
		}
		if eng.Horizon() != r {
			t.Fatalf("r=%d: Horizon()=%d", r, eng.Horizon())
		}
	}
}

func TestEngineExtendToBelowHorizon(t *testing.T) {
	eng := NewEngine(binStepper{}, Options{})
	if _, err := eng.ExtendTo(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExtendTo(context.Background(), 1); err == nil {
		t.Fatal("ExtendTo below the current horizon must fail")
	}
	// A same-horizon re-scan stays legal.
	if _, err := eng.ExtendTo(context.Background(), 2); err != nil {
		t.Fatalf("same-horizon re-scan: %v", err)
	}
}

func TestEngineExtendEmptyRoot(t *testing.T) {
	eng := NewEngine(deadStepper{}, Options{})
	for r := 0; r <= 3; r++ {
		res, err := eng.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if !res.Solvable || !res.Exhaustive || res.Configs != 0 {
			t.Fatalf("r=%d: %+v", r, res)
		}
	}
}

func TestEngineExtendEarlyExitVerdict(t *testing.T) {
	eng := NewEngine(binStepper{}, Options{EarlyExit: true})
	for r := 0; r <= 5; r++ {
		res, err := eng.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		want, _ := Run(binStepper{}, r, Options{})
		if res.Solvable != want.Solvable {
			t.Fatalf("r=%d: early-exit verdict %v, want %v", r, res.Solvable, want.Solvable)
		}
	}
}

func TestEngineObserverPerRound(t *testing.T) {
	var snaps []Stats
	eng := NewEngine(binStepper{}, Options{Observer: func(s Stats) { snaps = append(snaps, s) }})
	for r := 0; r <= 3; r++ {
		if _, err := eng.ExtendTo(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if len(snaps) != 4 {
		t.Fatalf("observer called %d times, want 4", len(snaps))
	}
	for i, s := range snaps {
		if s.Horizon != i {
			t.Fatalf("snapshot %d: Horizon=%d", i, s.Horizon)
		}
		if s.Configs != 4*pow2(i) {
			t.Fatalf("snapshot %d: Configs=%d want %d", i, s.Configs, 4*pow2(i))
		}
		if s.Workers != 1 || s.Subtrees != engFrontierWant(i) {
			t.Fatalf("snapshot %d: Workers=%d Subtrees=%d", i, s.Workers, s.Subtrees)
		}
	}
	// Views interned grows monotonically and NewViews sums to the total.
	total := 0
	for _, s := range snaps {
		total += s.NewViews
	}
	if total != snaps[len(snaps)-1].ViewsInterned {
		t.Fatalf("NewViews sum %d != final ViewsInterned %d", total, snaps[len(snaps)-1].ViewsInterned)
	}
}

// engFrontierWant: binStepper admits every history, so the frontier at
// horizon r is 4·2^r nodes.
func engFrontierWant(r int) int { return int(4 * pow2(r)) }

func TestEngineObserverOnRun(t *testing.T) {
	var got []Stats
	res, _, err := RunChecked(context.Background(), binStepper{}, 3,
		Options{Parallel: true, Workers: 2, SplitDepth: 1, Observer: func(s Stats) { got = append(got, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observer called %d times, want 1", len(got))
	}
	s := got[0]
	if s.Horizon != 3 || s.Rounds != 3 || s.Configs != res.Configs || s.Vertices != res.Vertices {
		t.Fatalf("run stats %+v vs result %+v", s, res)
	}
	if s.WorkerForks == 0 || s.Subtrees == 0 {
		t.Fatalf("parallel run stats missing pool info: %+v", s)
	}
}

func TestEngineExtendCancelIsRetryable(t *testing.T) {
	eng := NewEngine(binStepper{}, Options{})
	if _, err := eng.ExtendTo(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Extend(ctx); err == nil {
		t.Fatal("cancelled Extend returned no error")
	}
	if eng.Horizon() != 2 {
		t.Fatalf("cancelled Extend moved the horizon to %d", eng.Horizon())
	}
	// The same call succeeds with a live context and agrees with Run.
	got, err := eng.Extend(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Run(binStepper{}, 3, Options{})
	if got != want {
		t.Fatalf("retried Extend %+v != Run %+v", got, want)
	}
}

func TestEngineExtendStepperPanicPoisons(t *testing.T) {
	eng := NewEngine(panicStepper{}, Options{})
	if _, err := eng.ExtendTo(context.Background(), 1); err != nil {
		t.Fatalf("horizon 1 should not panic yet: %v", err)
	}
	_, err := eng.Extend(context.Background())
	if err == nil || !strings.Contains(err.Error(), "stepper exploded") {
		t.Fatalf("want stepper panic error, got %v", err)
	}
	if _, err2 := eng.Extend(context.Background()); err2 == nil {
		t.Fatal("poisoned engine accepted another Extend")
	}
}
