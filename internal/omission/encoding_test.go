package omission

import (
	"encoding/json"
	"testing"
)

func TestWordJSONRoundTrip(t *testing.T) {
	type payload struct {
		W Word `json:"w"`
	}
	in := payload{W: MustWord(".wbx")}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"w":".wbx"}` {
		t.Errorf("marshaled %s", data)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.W.Equal(in.W) {
		t.Errorf("round trip: %v", out.W)
	}
	// The empty word survives too.
	data, _ = json.Marshal(payload{W: Epsilon()})
	if err := json.Unmarshal(data, &out); err != nil || out.W.Len() != 0 {
		t.Errorf("ε round trip: %v %v", out.W, err)
	}
	if err := json.Unmarshal([]byte(`{"w":"zz"}`), &out); err == nil {
		t.Error("invalid word must fail")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	type payload struct {
		S Scenario `json:"s"`
	}
	in := payload{S: MustScenario("w.(bx)")}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"s":"w.(bx)"}` {
		t.Errorf("marshaled %s", data)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.S.Equal(in.S) {
		t.Errorf("round trip: %v", out.S)
	}
	if err := json.Unmarshal([]byte(`{"s":"((("}`), &out); err == nil {
		t.Error("invalid scenario must fail")
	}
	if _, err := (Scenario{}).MarshalText(); err == nil {
		t.Error("zero scenario must refuse to marshal")
	}
}
