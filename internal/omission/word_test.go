package omission

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseWord(t *testing.T) {
	w, err := ParseWord(".wbx")
	if err != nil {
		t.Fatal(err)
	}
	want := Word{None, LossWhite, LossBlack, LossBoth}
	if !w.Equal(want) {
		t.Errorf("ParseWord(.wbx) = %v, want %v", w, want)
	}
	if w.String() != ".wbx" {
		t.Errorf("String() = %q", w.String())
	}
	if _, err := ParseWord("a"); err == nil {
		t.Error("ParseWord(a) should fail")
	}
}

func TestEmptyWord(t *testing.T) {
	if Epsilon().String() != "ε" {
		t.Errorf("ε prints as %q", Epsilon().String())
	}
	if Epsilon().Len() != 0 {
		t.Error("|ε| != 0")
	}
	if !Epsilon().IsPrefixOf(MustWord("w")) {
		t.Error("ε is a prefix of every word")
	}
}

func TestWordOps(t *testing.T) {
	w := MustWord(".w")
	v := w.Append(LossBlack)
	if !v.Equal(MustWord(".wb")) {
		t.Errorf("Append = %v", v)
	}
	if !w.Equal(MustWord(".w")) {
		t.Error("Append mutated the receiver")
	}
	if !w.IsPrefixOf(v) {
		t.Error("w should be a prefix of w·b")
	}
	if v.IsPrefixOf(w) {
		t.Error("longer word cannot be a prefix of shorter")
	}
	if !w.Concat(MustWord("bb")).Equal(MustWord(".wbb")) {
		t.Error("Concat")
	}
	if !v.Prefix(2).Equal(w) {
		t.Error("Prefix(2)")
	}
	if !v.Prefix(0).Equal(Epsilon()) || !v.Prefix(-1).Equal(Epsilon()) {
		t.Error("Prefix(≤0) should be ε")
	}
	if !v.Prefix(99).Equal(v) {
		t.Error("Prefix beyond length should be the word itself")
	}
	if !MustWord("wb").Repeat(3).Equal(MustWord("wbwbwb")) {
		t.Error("Repeat")
	}
	if !MustWord("wb").Repeat(0).Equal(Epsilon()) {
		t.Error("Repeat(0)")
	}
	if !Uniform(LossWhite, 4).Equal(MustWord("wwww")) {
		t.Error("Uniform")
	}
	c := w.Clone()
	c[0] = LossBoth
	if w[0] == LossBoth {
		t.Error("Clone must be independent")
	}
}

func TestWordInGamma(t *testing.T) {
	if !MustWord(".wb").InGamma() {
		t.Error(".wb is in Γ*")
	}
	if MustWord(".x").InGamma() {
		t.Error(".x is not in Γ*")
	}
	if !Epsilon().InGamma() {
		t.Error("ε is in Γ*")
	}
}

func TestAllWords(t *testing.T) {
	for r := 0; r <= 6; r++ {
		ws := AllWords(Gamma, r)
		want := 1
		for i := 0; i < r; i++ {
			want *= 3
		}
		if len(ws) != want {
			t.Fatalf("|Γ^%d| = %d, want %d", r, len(ws), want)
		}
		seen := map[string]bool{}
		for _, w := range ws {
			if w.Len() != r {
				t.Fatalf("word %v has wrong length", w)
			}
			if seen[w.String()] {
				t.Fatalf("duplicate word %v", w)
			}
			seen[w.String()] = true
		}
	}
	if AllWords(Sigma, 2); len(AllWords(Sigma, 2)) != 16 {
		t.Error("|Σ^2| = 16")
	}
	if AllWords(Gamma, -1) != nil {
		t.Error("negative length should give nil")
	}
}

func TestCountLosses(t *testing.T) {
	w := MustWord(".wxb.")
	rounds, msgs := w.CountLosses()
	if rounds != 3 || msgs != 4 {
		t.Errorf("CountLosses = (%d,%d), want (3,4)", rounds, msgs)
	}
}

func TestWordStringRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWord(rng, int(n%32), Sigma)
		got, err := ParseWord(w.String())
		return err == nil && got.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomWord draws a uniform word of the given length over the alphabet.
func randomWord(rng *rand.Rand, n int, alphabet []Letter) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return w
}
