package omission

import "testing"

func TestLetterDelta(t *testing.T) {
	// δ('b') = −1, δ('.') = 0, δ('w') = +1 (design convention; gives
	// ind(b^r)=0 and ind(w^r)=3^r−1 as in Proposition III.3).
	cases := []struct {
		l    Letter
		want int
	}{
		{LossBlack, -1},
		{None, 0},
		{LossWhite, +1},
		{LossBoth, 0},
	}
	for _, c := range cases {
		if got := c.l.Delta(); got != c.want {
			t.Errorf("Delta(%v) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestLetterRoundTrip(t *testing.T) {
	for _, l := range Sigma {
		got, err := ParseLetter(l.Rune())
		if err != nil {
			t.Fatalf("ParseLetter(%q): %v", l.Rune(), err)
		}
		if got != l {
			t.Errorf("ParseLetter(Rune(%v)) = %v", l, got)
		}
	}
}

func TestParseLetterAliases(t *testing.T) {
	for _, r := range []rune{'-', '0'} {
		if l, err := ParseLetter(r); err != nil || l != None {
			t.Errorf("ParseLetter(%q) = %v, %v; want None", r, l, err)
		}
	}
	for _, r := range []rune{'W', 'B', 'X'} {
		if _, err := ParseLetter(r); err != nil {
			t.Errorf("ParseLetter(%q) unexpectedly failed: %v", r, err)
		}
	}
	if _, err := ParseLetter('z'); err == nil {
		t.Error("ParseLetter('z') should fail")
	}
}

func TestLetterPredicates(t *testing.T) {
	if !None.InGamma() || !LossWhite.InGamma() || !LossBlack.InGamma() {
		t.Error("Γ must contain '.', 'w', 'b'")
	}
	if LossBoth.InGamma() {
		t.Error("Γ must not contain 'x'")
	}
	if Letter(200).Valid() {
		t.Error("Letter(200) should be invalid")
	}
	if !LossWhite.LostWhite() || LossWhite.LostBlack() {
		t.Error("LossWhite loses exactly white's message")
	}
	if !LossBlack.LostBlack() || LossBlack.LostWhite() {
		t.Error("LossBlack loses exactly black's message")
	}
	if !LossBoth.LostWhite() || !LossBoth.LostBlack() {
		t.Error("LossBoth loses both messages")
	}
	if None.LostWhite() || None.LostBlack() {
		t.Error("None loses nothing")
	}
}

func TestAlphabets(t *testing.T) {
	if len(Sigma) != 4 {
		t.Fatalf("|Σ| = %d, want 4", len(Sigma))
	}
	if len(Gamma) != 3 {
		t.Fatalf("|Γ| = %d, want 3", len(Gamma))
	}
	for _, l := range Gamma {
		if !l.InGamma() {
			t.Errorf("letter %v listed in Gamma but InGamma() is false", l)
		}
	}
}

func TestLetterDescribe(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range Sigma {
		d := l.Describe()
		if d == "" || seen[d] {
			t.Errorf("Describe(%v) = %q not unique/nonempty", l, d)
		}
		seen[d] = true
	}
	if Letter(99).Describe() != "invalid letter" {
		t.Error("invalid letter description")
	}
}
