package omission

import (
	"fmt"
	"math/big"
)

// MaxInt64Rounds is the largest word length r for which every index value
// (≤ 3^r − 1) fits in an int64. 3^39 ≈ 4.05e18 < 2^63−1 < 3^40.
const MaxInt64Rounds = 39

// Index computes ind(w) of Definition III.1 exactly, for arbitrary length,
// as a big integer: ind(ε) = 0 and ind(ua) = 3·ind(u) + (−1)^ind(u)·δ(a) + 1.
// It panics if w contains the double omission (ind is defined on Γ* only).
func Index(w Word) *big.Int {
	t := NewIndexTracker()
	for _, a := range w {
		t.Step(a)
	}
	return t.Value()
}

// IndexInt64 computes ind(w) as an int64. It returns an error if
// |w| > MaxInt64Rounds (the value may overflow) or if w leaves Γ*.
func IndexInt64(w Word) (int64, error) {
	if len(w) > MaxInt64Rounds {
		return 0, fmt.Errorf("omission: word length %d exceeds int64-safe bound %d", len(w), MaxInt64Rounds)
	}
	var ind int64
	for _, a := range w {
		if !a.InGamma() {
			return 0, fmt.Errorf("omission: ind undefined on double omission (word %s)", w)
		}
		d := int64(a.Delta())
		if ind&1 == 1 {
			d = -d
		}
		ind = 3*ind + d + 1
	}
	return ind, nil
}

// IndexTracker computes ind(w) incrementally, one letter per Step, in
// O(1) big-int operations per round. It is the streaming form used by the
// consensus algorithm A_w to follow ind(w_r) of its excluded scenario.
// The zero value is not ready; use NewIndexTracker.
type IndexTracker struct {
	ind   *big.Int
	round int
	tmp   *big.Int
}

// NewIndexTracker returns a tracker positioned at ε with ind = 0.
func NewIndexTracker() *IndexTracker {
	return &IndexTracker{ind: new(big.Int), tmp: new(big.Int)}
}

// Step extends the tracked word by one letter and returns the new index.
// The returned value is owned by the tracker; callers must not modify it
// and should copy it if they need to retain it across Steps. Step panics
// on the double omission; StepChecked is the error-returning variant.
func (t *IndexTracker) Step(a Letter) *big.Int {
	ind, err := t.StepChecked(a)
	if err != nil {
		panic(err.Error())
	}
	return ind
}

// StepChecked is Step returning an error instead of panicking on the
// double omission (the index function of Definition III.1 is only defined
// over Γ). On error the tracker is unchanged.
func (t *IndexTracker) StepChecked(a Letter) (*big.Int, error) {
	if !a.InGamma() {
		return nil, fmt.Errorf("omission: IndexTracker.Step on double omission at round %d", t.round+1)
	}
	d := int64(a.Delta())
	if t.ind.Bit(0) == 1 {
		d = -d
	}
	// ind = 3*ind + d + 1
	t.tmp.SetInt64(3)
	t.ind.Mul(t.ind, t.tmp)
	t.tmp.SetInt64(d + 1)
	t.ind.Add(t.ind, t.tmp)
	t.round++
	return t.ind, nil
}

// Value returns a copy of the current index.
func (t *IndexTracker) Value() *big.Int { return new(big.Int).Set(t.ind) }

// Peek returns the tracker's internal index; callers must treat it as
// read-only. It avoids the allocation of Value in hot comparison loops.
func (t *IndexTracker) Peek() *big.Int { return t.ind }

// Round returns the number of letters consumed so far.
func (t *IndexTracker) Round() int { return t.round }

// Parity returns ind mod 2 (0 or 1): the sign selector (−1)^ind of the
// recurrence.
func (t *IndexTracker) Parity() uint { return t.ind.Bit(0) }

// Clone returns an independent copy of the tracker.
func (t *IndexTracker) Clone() *IndexTracker {
	return &IndexTracker{ind: new(big.Int).Set(t.ind), round: t.round, tmp: new(big.Int)}
}

// Int64Tracker is the overflow-checked int64 fast path of IndexTracker,
// valid for up to MaxInt64Rounds steps. It exists for the ablation
// benchmark big.Int-vs-int64 and for hot exhaustive-enumeration loops.
type Int64Tracker struct {
	ind   int64
	round int
}

// Step extends by one letter; it panics beyond MaxInt64Rounds or on the
// double omission.
func (t *Int64Tracker) Step(a Letter) int64 {
	if t.round >= MaxInt64Rounds {
		panic("omission: Int64Tracker overflow")
	}
	if !a.InGamma() {
		panic("omission: Int64Tracker.Step on double omission")
	}
	d := int64(a.Delta())
	if t.ind&1 == 1 {
		d = -d
	}
	t.ind = 3*t.ind + d + 1
	t.round++
	return t.ind
}

// Value returns the current index.
func (t *Int64Tracker) Value() int64 { return t.ind }

// Round returns the number of letters consumed.
func (t *Int64Tracker) Round() int { return t.round }

// Pow3 returns 3^r as a big integer.
func Pow3(r int) *big.Int {
	return new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(r)), nil)
}

// Pow3Int64 returns 3^r as an int64; r must be ≤ MaxInt64Rounds.
func Pow3Int64(r int) int64 {
	if r > MaxInt64Rounds {
		panic("omission: Pow3Int64 overflow")
	}
	v := int64(1)
	for i := 0; i < r; i++ {
		v *= 3
	}
	return v
}

// UnIndexChecked inverts the index bijection (Lemma III.2): it returns
// the unique word w ∈ Γ^r with ind(w) = k, or an error unless r ≥ 0 and
// 0 ≤ k < 3^r. It is the form to use on untrusted input (e.g. CLI
// arguments); UnIndex is the panicking form for internal invariant
// sites.
//
// Derivation: write k = 3q + rem with rem ∈ {0,1,2}; then q = ind(u) for
// the length r−1 prefix u and (−1)^q·δ(a) = rem − 1 determines the last
// letter a.
func UnIndexChecked(r int, k *big.Int) (Word, error) {
	if r < 0 {
		return nil, fmt.Errorf("omission: UnIndex: negative length %d", r)
	}
	if k == nil || k.Sign() < 0 || k.Cmp(Pow3(r)) >= 0 {
		return nil, fmt.Errorf("omission: UnIndex(%d, %v): index out of range [0, 3^%d)", r, k, r)
	}
	w := make(Word, r)
	q := new(big.Int).Set(k)
	rem := new(big.Int)
	three := big.NewInt(3)
	for i := r - 1; i >= 0; i-- {
		q.QuoRem(q, three, rem)
		w[i] = letterForRem(int(rem.Int64()), q.Bit(0) == 1)
	}
	return w, nil
}

// UnIndex is UnIndexChecked panicking on out-of-range input, for
// internal call sites whose arguments are invariants.
func UnIndex(r int, k *big.Int) Word {
	w, err := UnIndexChecked(r, k)
	if err != nil {
		panic(err)
	}
	return w
}

// UnIndexInt64Checked is UnIndexChecked for indices fitting in an int64;
// it additionally rejects r > MaxInt64Rounds, where 3^r − 1 no longer
// fits (use the big-integer form there).
func UnIndexInt64Checked(r int, k int64) (Word, error) {
	if r < 0 {
		return nil, fmt.Errorf("omission: UnIndexInt64: negative length %d", r)
	}
	if r > MaxInt64Rounds {
		return nil, fmt.Errorf("omission: UnIndexInt64: length %d exceeds int64-safe bound %d", r, MaxInt64Rounds)
	}
	if k < 0 || k >= Pow3Int64(r) {
		return nil, fmt.Errorf("omission: UnIndexInt64(%d, %d): index out of range [0, 3^%d)", r, k, r)
	}
	w := make(Word, r)
	for i := r - 1; i >= 0; i-- {
		q, rem := k/3, int(k%3)
		w[i] = letterForRem(rem, q&1 == 1)
		k = q
	}
	return w, nil
}

// UnIndexInt64 is UnIndexInt64Checked panicking on out-of-range input.
func UnIndexInt64(r int, k int64) Word {
	w, err := UnIndexInt64Checked(r, k)
	if err != nil {
		panic(err)
	}
	return w
}

// letterForRem returns the letter a with (−1)^q·δ(a) = rem − 1, where odd
// indicates q is odd.
func letterForRem(rem int, odd bool) Letter {
	// target = rem - 1 ∈ {-1, 0, +1}; δ(a) = target·(−1)^q.
	target := rem - 1
	if odd {
		target = -target
	}
	switch target {
	case -1:
		return LossBlack
	case 0:
		return None
	default:
		return LossWhite
	}
}

// AdjacentWord returns the unique word of the same length with index
// ind(w)+1, or ok=false if ind(w) is already the maximum 3^r−1. Together
// with Lemma III.4 this walks the indistinguishability chain.
func AdjacentWord(w Word) (Word, bool) {
	k := Index(w)
	k.Add(k, big.NewInt(1))
	if k.Cmp(Pow3(len(w))) >= 0 {
		return nil, false
	}
	return UnIndex(len(w), k), true
}

// IndistinguishableTo reports which process cannot distinguish the
// executions under v and its index-successor v′ (Corollary III.5): if
// ind(v) is even the successor is black-indistinguishable (black has the
// same state), if odd it is white-indistinguishable. The boolean returned
// is true for "white is the blind process".
func IndistinguishableTo(v Word) (whiteBlind bool) {
	return Index(v).Bit(0) == 1
}
