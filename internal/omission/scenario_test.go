package omission

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseScenario(t *testing.T) {
	s := MustScenario(".w(b)")
	if s.String() != ".w(b)" {
		t.Errorf("String = %q", s.String())
	}
	if got := s.PrefixWord(5); !got.Equal(MustWord(".wbbb")) {
		t.Errorf("PrefixWord(5) = %v", got)
	}
	if s.At(0) != None || s.At(1) != LossWhite || s.At(100) != LossBlack {
		t.Error("At values wrong")
	}
	// Single letter shorthand = constant scenario.
	c := MustScenario("w")
	if !c.Equal(Constant(LossWhite)) {
		t.Error("shorthand constant")
	}
	if Constant(None).String() != "(.)" {
		t.Errorf("Constant prints %q", Constant(None).String())
	}
	for _, bad := range []string{"", "wb", "w(", "w)", "(a)", "()", "a(b)"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) should fail", bad)
		}
	}
}

func TestScenarioEqualSemantic(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"(.)", "(..)", true},
		{"(.)", ".(.)", true},
		{"(wb)", "w(bw)", true},
		{"(wb)", "(bw)", false},
		{"(w)", "(b)", false},
		{"w(b)", "(wb)", false},
		{"..(w)", "(w)", false},
		{"b(wbwb)", "bw(bw)", true},
	}
	for _, c := range cases {
		a, b := MustScenario(c.a), MustScenario(c.b)
		if got := a.Equal(b); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.Equal(a); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestScenarioCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"(..)", "(.)"},
		{".(.)", "(.)"},
		{"w(bw)", "(wb)"},
		{"(wbwb)", "(wb)"},
		{"b(wbwb)", "(bw)"},
		{".w(b)", ".w(b)"},
		{"www(w)", "(w)"},
	}
	for _, c := range cases {
		got := MustScenario(c.in).Canonical()
		if got.String() != c.want {
			t.Errorf("Canonical(%s) = %s, want %s", c.in, got, c.want)
		}
		if !got.Equal(MustScenario(c.in)) {
			t.Errorf("Canonical(%s) changed the ω-word", c.in)
		}
	}
}

func TestScenarioCanonicalQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		u := randomWord(rng, rng.Intn(5), Gamma)
		v := randomWord(rng, 1+rng.Intn(4), Gamma)
		s := UPWord(u, v)
		c := s.Canonical()
		if !c.Equal(s) {
			t.Fatalf("Canonical(%s) = %s not equal as ω-word", s, c)
		}
		// Canonical is idempotent.
		if c.Canonical().String() != c.String() {
			t.Fatalf("Canonical not idempotent on %s", s)
		}
		// Two equal scenarios canonicalize identically.
		s2 := UPWord(u.Concat(v), v.Repeat(2))
		if !s2.Equal(s) {
			t.Fatalf("constructed equal scenario differs: %s vs %s", s, s2)
		}
		if s2.Canonical().String() != c.String() {
			t.Fatalf("canonical forms differ: %s vs %s", s2.Canonical(), c)
		}
	}
}

func TestScenarioFairness(t *testing.T) {
	cases := []struct {
		s    string
		fair bool
	}{
		{"(.)", true},
		{"(w)", false},
		{"(b)", false},
		{"(wb)", true},
		{"wwww(.)", true},
		{"..(w)", false},
		{"(x)", false},
		{"(wx)", false}, // white never delivered
		{"(.x)", true},
	}
	for _, c := range cases {
		s := MustScenario(c.s)
		if got := s.IsFair(); got != c.fair {
			t.Errorf("IsFair(%s) = %v, want %v", c.s, got, c.fair)
		}
		if s.IsUnfair() == c.fair {
			t.Errorf("IsUnfair(%s) inconsistent", c.s)
		}
	}
}

func TestScenarioInGamma(t *testing.T) {
	if !MustScenario(".w(b)").InGamma() {
		t.Error(".w(b) in Γ^ω")
	}
	if MustScenario("x(.)").InGamma() || MustScenario(".(x)").InGamma() {
		t.Error("scenarios containing x are not in Γ^ω")
	}
}

func TestSources(t *testing.T) {
	f := FuncSource(func(r int) Letter {
		if r%2 == 0 {
			return LossWhite
		}
		return LossBlack
	})
	if f.At(0) != LossWhite || f.At(3) != LossBlack {
		t.Error("FuncSource")
	}
	w := WordSource(MustWord("wb"))
	if w.At(0) != LossWhite || w.At(1) != LossBlack || w.At(2) != None || w.At(1000) != None {
		t.Error("WordSource should pad with None")
	}
}

func TestScenarioAccessorsClone(t *testing.T) {
	s := MustScenario("w(b)")
	p := s.Prefix()
	p[0] = None
	if s.At(0) != LossWhite {
		t.Error("Prefix() must return a copy")
	}
	q := s.Period()
	q[0] = None
	if s.At(5) != LossBlack {
		t.Error("Period() must return a copy")
	}
}

func TestNewScenarioRejectsEmptyPeriod(t *testing.T) {
	if _, err := NewScenario(MustWord("w"), nil); err == nil {
		t.Error("empty period must be rejected")
	}
	assertPanics(t, func() { UPWord(nil, nil) })
	assertPanics(t, func() { MustScenario("(") })
}

// TestParseScenarioEmptyPeriod pins the satellite bugfix: an empty
// period (e.g. ".()") must produce a clear parse error naming the input,
// not a generic constructor error, and nested or stray parentheses must
// be rejected outright.
func TestParseScenarioEmptyPeriod(t *testing.T) {
	for _, bad := range []string{"()", ".()", "w()", "ww()"} {
		_, err := ParseScenario(bad)
		if err == nil {
			t.Errorf("ParseScenario(%q) should fail", bad)
			continue
		}
		if !strings.Contains(err.Error(), bad) || !strings.Contains(err.Error(), "period must be non-empty") {
			t.Errorf("ParseScenario(%q) error %q should name the input and the empty period", bad, err)
		}
	}
}

func TestParseScenarioMalformedParens(t *testing.T) {
	cases := []string{
		".(w",     // unterminated period
		"((.))",   // nested parens
		".(w(b))", // nested parens
		"(.)(.)",  // second group
		").(w)",   // stray close before open
		")w",      // stray close, no open
		"w)",      // stray close, no open
	}
	for _, bad := range cases {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) should fail", bad)
		}
	}
	// The fix must not reject any well-formed scenario.
	for _, good := range []string{"(.)", ".w(b)", "x(wb)", "(wbx.)"} {
		if _, err := ParseScenario(good); err != nil {
			t.Errorf("ParseScenario(%q): %v", good, err)
		}
	}
}
