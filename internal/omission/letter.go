// Package omission implements the combinatorial core of Fevat & Godard's
// omission-scheme framework for the Coordinated Attack Problem: the
// four-letter alphabet Σ describing what an adversary may do to the two
// messages exchanged in a synchronous round, finite words and ultimately
// periodic infinite scenarios over that alphabet, and the integer index
// function ind : Γ* → [0, 3^r−1] (Definition III.1 of the paper) whose
// ±1-adjacency structure encodes one-process indistinguishability.
//
// Conventions (fixed throughout the repository):
//
//	'.'  None      — no message is lost this round
//	'w'  LossWhite — white's message is lost (black receives nothing)
//	'b'  LossBlack — black's message is lost (white receives nothing)
//	'x'  LossBoth  — both messages are lost (excluded from Γ)
//
// δ('b') = −1, δ('.') = 0, δ('w') = +1, and
// ind(ua) = 3·ind(u) + (−1)^ind(u)·δ(a) + 1, so that ind('b'^r) = 0 and
// ind('w'^r) = 3^r − 1 (Proposition III.3).
package omission

import "fmt"

// Letter is one symbol of the omission alphabet Σ: what the adversary does
// to the (at most two) messages in flight during a synchronous round.
type Letter uint8

const (
	// None delivers both messages.
	None Letter = iota
	// LossWhite drops the message sent by process white; black's receive
	// returns null this round.
	LossWhite
	// LossBlack drops the message sent by process black; white's receive
	// returns null this round.
	LossBlack
	// LossBoth drops both messages (the double omission, Σ \ Γ).
	LossBoth

	numLetters
)

// Sigma is the full alphabet Σ of Definition II.1.
var Sigma = []Letter{None, LossWhite, LossBlack, LossBoth}

// Gamma is the sub-alphabet Γ = Σ \ {LossBoth}: rounds without double
// omission (Definition II.1). All of Section III of the paper works over Γ.
var Gamma = []Letter{None, LossWhite, LossBlack}

// Valid reports whether l is one of the four alphabet letters.
func (l Letter) Valid() bool { return l < numLetters }

// InGamma reports whether l belongs to Γ, i.e. is not the double omission.
func (l Letter) InGamma() bool { return l < LossBoth }

// Delta is the δ function of Definition III.1, extended with δ(LossBoth)=0
// for convenience (the index function is only defined on Γ*).
func (l Letter) Delta() int {
	switch l {
	case LossWhite:
		return +1
	case LossBlack:
		return -1
	default:
		return 0
	}
}

// Rune returns the canonical one-character representation of the letter.
func (l Letter) Rune() rune {
	switch l {
	case None:
		return '.'
	case LossWhite:
		return 'w'
	case LossBlack:
		return 'b'
	case LossBoth:
		return 'x'
	default:
		return '?'
	}
}

// String implements fmt.Stringer.
func (l Letter) String() string { return string(l.Rune()) }

// Describe returns a human-readable explanation of the letter, in the
// military metaphor of the paper.
func (l Letter) Describe() string {
	switch l {
	case None:
		return "both messengers get through"
	case LossWhite:
		return "White's messenger is captured"
	case LossBlack:
		return "Black's messenger is captured"
	case LossBoth:
		return "both messengers are captured"
	default:
		return "invalid letter"
	}
}

// ParseLetter converts a rune into a Letter. It accepts the canonical runes
// '.', 'w', 'b', 'x' (case-insensitive for the letters) plus the aliases
// '-' and '0' for None.
func ParseLetter(r rune) (Letter, error) {
	switch r {
	case '.', '-', '0':
		return None, nil
	case 'w', 'W':
		return LossWhite, nil
	case 'b', 'B':
		return LossBlack, nil
	case 'x', 'X':
		return LossBoth, nil
	default:
		return 0, fmt.Errorf("omission: invalid letter %q", r)
	}
}

// LostWhite reports whether white's message is lost under this letter.
func (l Letter) LostWhite() bool { return l == LossWhite || l == LossBoth }

// LostBlack reports whether black's message is lost under this letter.
func (l Letter) LostBlack() bool { return l == LossBlack || l == LossBoth }
