package omission

import (
	"fmt"
	"strings"
)

// Source is an infinite word over Σ revealed one letter at a time: the
// r-th letter (0-based) describes what happens to messages sent in round
// r+1. Sources may be lazily generated (adaptive adversaries) or concrete
// ultimately periodic Scenarios.
type Source interface {
	// At returns the letter at position r ≥ 0.
	At(r int) Letter
}

// Scenario is an ultimately periodic infinite word u·v^ω: a communication
// scenario in the sense of Definition II.3 with a finite representation.
// The zero value is not valid; use NewScenario or MustScenario.
type Scenario struct {
	prefix Word
	period Word
}

// NewScenario builds the scenario prefix·period^ω. The period must be
// non-empty.
func NewScenario(prefix, period Word) (Scenario, error) {
	if len(period) == 0 {
		return Scenario{}, fmt.Errorf("omission: scenario period must be non-empty")
	}
	return Scenario{prefix: prefix.Clone(), period: period.Clone()}, nil
}

// MustScenario parses a scenario from the textual form "u(v)" meaning
// u·v^ω, e.g. ".w(b)" or "(.)", panicking on malformed input. A string
// with no parentheses, e.g. "w", is interpreted as the constant tail
// scenario w^ω when it has length 1, and is otherwise rejected.
func MustScenario(s string) Scenario {
	sc, err := ParseScenario(s)
	if err != nil {
		panic(err)
	}
	return sc
}

// ParseScenario parses the "u(v)" form described at MustScenario.
func ParseScenario(s string) (Scenario, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.IndexByte(s, ')') >= 0 {
			return Scenario{}, fmt.Errorf("omission: scenario %q: ')' without matching '('", s)
		}
		w, err := ParseWord(s)
		if err != nil {
			return Scenario{}, err
		}
		if len(w) != 1 {
			return Scenario{}, fmt.Errorf("omission: scenario %q needs an explicit (period)", s)
		}
		return NewScenario(nil, w)
	}
	if !strings.HasSuffix(s, ")") {
		return Scenario{}, fmt.Errorf("omission: scenario %q: unterminated period", s)
	}
	body := s[open+1 : len(s)-1]
	if strings.ContainsAny(body, "()") {
		return Scenario{}, fmt.Errorf("omission: scenario %q: nested or stray parentheses", s)
	}
	if len(body) == 0 {
		return Scenario{}, fmt.Errorf("omission: scenario %q: period must be non-empty (a scenario is the infinite word u·v^ω)", s)
	}
	if strings.IndexByte(s[:open], ')') >= 0 {
		return Scenario{}, fmt.Errorf("omission: scenario %q: ')' before '('", s)
	}
	u, err := ParseWord(s[:open])
	if err != nil {
		return Scenario{}, err
	}
	v, err := ParseWord(body)
	if err != nil {
		return Scenario{}, err
	}
	return NewScenario(u, v)
}

// Constant returns the scenario l^ω.
func Constant(l Letter) Scenario {
	return Scenario{period: Word{l}}
}

// UPWord builds u·v^ω from already-parsed words; it panics if v is empty.
func UPWord(u, v Word) Scenario {
	sc, err := NewScenario(u, v)
	if err != nil {
		panic(err)
	}
	return sc
}

// At implements Source.
func (s Scenario) At(r int) Letter {
	if r < len(s.prefix) {
		return s.prefix[r]
	}
	return s.period[(r-len(s.prefix))%len(s.period)]
}

// PrefixWord returns the length-n prefix of the infinite word.
func (s Scenario) PrefixWord(n int) Word {
	w := make(Word, n)
	for i := 0; i < n; i++ {
		w[i] = s.At(i)
	}
	return w
}

// Prefix returns the (finite) transient part u of the representation.
func (s Scenario) Prefix() Word { return s.prefix.Clone() }

// Period returns the periodic part v of the representation.
func (s Scenario) Period() Word { return s.period.Clone() }

// String prints the scenario in the "u(v)" form.
func (s Scenario) String() string {
	if len(s.period) == 0 {
		return "<invalid scenario>"
	}
	if len(s.prefix) == 0 {
		return "(" + s.period.String() + ")"
	}
	return s.prefix.String() + "(" + s.period.String() + ")"
}

// InGamma reports whether every letter of the scenario is in Γ.
func (s Scenario) InGamma() bool { return s.prefix.InGamma() && s.period.InGamma() }

// Equal reports semantic equality of s and t as infinite words, regardless
// of representation: u1·v1^ω = u2·v2^ω iff they agree on a prefix of length
// max(|u1|,|u2|) + lcm(|v1|,|v2|).
func (s Scenario) Equal(t Scenario) bool {
	if len(s.period) == 0 || len(t.period) == 0 {
		return false
	}
	n := max(len(s.prefix), len(t.prefix)) + lcm(len(s.period), len(t.period))
	for i := 0; i < n; i++ {
		if s.At(i) != t.At(i) {
			return false
		}
	}
	return true
}

// Canonical returns the representation with the shortest prefix and a
// primitive (non-repeating) period: the unique minimal u·v^ω form.
func (s Scenario) Canonical() Scenario {
	if len(s.period) == 0 {
		return s
	}
	// Primitive root of the period.
	v := s.period
	for d := 1; d <= len(v)/2; d++ {
		if len(v)%d != 0 {
			continue
		}
		if v.Equal(v[:d].Repeat(len(v) / d)) {
			v = v[:d].Clone()
			break
		}
	}
	u := s.prefix.Clone()
	// Pull trailing prefix letters into the period rotation while possible:
	// u·a · (v)^ω with a == last letter of rotation ⇒ shorten.
	for len(u) > 0 && u[len(u)-1] == v[len(v)-1] {
		// u x (v1..vk)^ω with x == vk  ≡  u (vk v1..v(k-1))^ω
		rot := make(Word, 0, len(v))
		rot = append(rot, v[len(v)-1])
		rot = append(rot, v[:len(v)-1]...)
		v = rot
		u = u[:len(u)-1]
	}
	return Scenario{prefix: u.Clone(), period: v}
}

// IsFair reports whether the scenario is fair in the sense of Definition
// III.6 / Example II.8: each process's messages are delivered infinitely
// often. For an ultimately periodic word this depends only on the period.
func (s Scenario) IsFair() bool {
	whiteDelivered, blackDelivered := false, false
	for _, l := range s.period {
		if !l.LostWhite() {
			whiteDelivered = true
		}
		if !l.LostBlack() {
			blackDelivered = true
		}
	}
	return whiteDelivered && blackDelivered
}

// IsUnfair reports whether the scenario is unfair: from some point on,
// white's messages are always lost or black's messages are always lost.
// For words over Γ, IsUnfair is exactly !IsFair; over Σ a word can be
// neither (e.g. alternating x-free losses) — per Definition III.6 the
// dichotomy fair/unfair is total, so IsUnfair == !IsFair always.
func (s Scenario) IsUnfair() bool { return !s.IsFair() }

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// FuncSource adapts a function to the Source interface.
type FuncSource func(r int) Letter

// At implements Source.
func (f FuncSource) At(r int) Letter { return f(r) }

// WordSource is a finite word viewed as a Source whose tail is None^ω.
// It is convenient for bounded-horizon simulations.
type WordSource Word

// At implements Source.
func (w WordSource) At(r int) Letter {
	if r < len(w) {
		return w[r]
	}
	return None
}
