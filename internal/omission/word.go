package omission

import (
	"fmt"
	"strings"
)

// Word is a finite sequence of letters: a partial scenario in the sense of
// Definition II.3. The zero value is the empty word ε.
type Word []Letter

// Epsilon is the empty word ε.
func Epsilon() Word { return Word{} }

// ParseWord parses a word from its string form, e.g. ".wb". The string
// "ε" parses to the empty word, matching Word.String.
func ParseWord(s string) (Word, error) {
	if s == "ε" {
		return Word{}, nil
	}
	w := make(Word, 0, len(s))
	for _, r := range s {
		l, err := ParseLetter(r)
		if err != nil {
			return nil, err
		}
		w = append(w, l)
	}
	return w, nil
}

// MustWord is ParseWord that panics on error; intended for constants in
// tests and examples.
func MustWord(s string) Word {
	w, err := ParseWord(s)
	if err != nil {
		panic(err)
	}
	return w
}

// String implements fmt.Stringer; the empty word prints as "ε".
func (w Word) String() string {
	if len(w) == 0 {
		return "ε"
	}
	var b strings.Builder
	b.Grow(len(w))
	for _, l := range w {
		b.WriteRune(l.Rune())
	}
	return b.String()
}

// Len returns |w|.
func (w Word) Len() int { return len(w) }

// InGamma reports whether every letter of w belongs to Γ.
func (w Word) InGamma() bool {
	for _, l := range w {
		if !l.InGamma() {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Append returns a fresh word equal to w followed by the given letters.
// The receiver is not modified.
func (w Word) Append(ls ...Letter) Word {
	c := make(Word, 0, len(w)+len(ls))
	c = append(c, w...)
	c = append(c, ls...)
	return c
}

// Concat returns the concatenation w·v as a fresh word.
func (w Word) Concat(v Word) Word { return w.Append(v...) }

// Equal reports whether w and v are the same word.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether w is a prefix of v.
func (w Word) IsPrefixOf(v Word) bool {
	if len(w) > len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// Prefix returns the prefix of length n (w itself if n ≥ |w|; ε if n ≤ 0).
func (w Word) Prefix(n int) Word {
	if n <= 0 {
		return Word{}
	}
	if n > len(w) {
		n = len(w)
	}
	return w[:n].Clone()
}

// Repeat returns w concatenated n times.
func (w Word) Repeat(n int) Word {
	if n <= 0 {
		return Word{}
	}
	c := make(Word, 0, n*len(w))
	for i := 0; i < n; i++ {
		c = append(c, w...)
	}
	return c
}

// Uniform returns the word l^n.
func Uniform(l Letter, n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = l
	}
	return w
}

// AllWords enumerates every word of the given length over the given
// alphabet, in lexicographic order of the alphabet slice. The number of
// words is len(alphabet)^length, so callers should keep the length modest.
func AllWords(alphabet []Letter, length int) []Word {
	if length < 0 {
		return nil
	}
	total := 1
	for i := 0; i < length; i++ {
		total *= len(alphabet)
	}
	out := make([]Word, 0, total)
	cur := make(Word, length)
	var rec func(i int)
	rec = func(i int) {
		if i == length {
			out = append(out, cur.Clone())
			return
		}
		for _, l := range alphabet {
			cur[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// CountLosses returns the number of rounds in which at least one message is
// lost, and the total number of lost messages (LossBoth counts twice).
func (w Word) CountLosses() (lossyRounds, lostMessages int) {
	for _, l := range w {
		n := 0
		if l.LostWhite() {
			n++
		}
		if l.LostBlack() {
			n++
		}
		if n > 0 {
			lossyRounds++
		}
		lostMessages += n
	}
	return lossyRounds, lostMessages
}

// GoString implements fmt.GoStringer for readable test failures.
func (w Word) GoString() string { return fmt.Sprintf("omission.MustWord(%q)", w.String()) }
