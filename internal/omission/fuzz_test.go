package omission

import (
	"math/big"
	"testing"
)

// bytesToWord maps arbitrary fuzz bytes into a Γ-word.
func bytesToWord(data []byte, alphabet []Letter) Word {
	w := make(Word, 0, len(data))
	for _, b := range data {
		w = append(w, alphabet[int(b)%len(alphabet)])
	}
	return w
}

func FuzzIndexRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1})
	f.Add([]byte{})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2})
	// Boundary lengths around the int64-safe bound.
	f.Add(make([]byte, MaxInt64Rounds))
	f.Add(make([]byte, MaxInt64Rounds+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 60 {
			data = data[:60]
		}
		w := bytesToWord(data, Gamma)
		k := Index(w)
		if k.Sign() < 0 || k.Cmp(Pow3(len(w))) >= 0 {
			t.Fatalf("ind(%v) = %v out of range", w, k)
		}
		if !UnIndex(len(w), k).Equal(w) {
			t.Fatalf("UnIndex(Index(%v)) mismatch", w)
		}
		// UnIndexChecked is the exact inverse on the valid range and must
		// reject the first value past it.
		wc, err := UnIndexChecked(len(w), k)
		if err != nil || !wc.Equal(w) {
			t.Fatalf("UnIndexChecked(%d, %v) = %v, %v; want %v", len(w), k, wc, err, w)
		}
		if _, err := UnIndexChecked(len(w), Pow3(len(w))); err == nil {
			t.Fatalf("UnIndexChecked(%d, 3^%d) accepted an out-of-range index", len(w), len(w))
		}
		if _, err := UnIndexChecked(len(w), new(big.Int).Neg(big.NewInt(1))); err == nil {
			t.Fatalf("UnIndexChecked(%d, -1) accepted a negative index", len(w))
		}
		if len(w) <= MaxInt64Rounds {
			k64, err := IndexInt64(w)
			if err != nil || big.NewInt(k64).Cmp(k) != 0 {
				t.Fatalf("int64 index mismatch on %v", w)
			}
		} else if _, err := IndexInt64(w); err == nil {
			t.Fatalf("IndexInt64 accepted length %d past the int64-safe bound", len(w))
		}
	})
}

func FuzzParseScenario(f *testing.F) {
	f.Add(".w(b)")
	f.Add("(wb)")
	f.Add("x(.x)")
	f.Add("((")
	// Malformed inputs that once slipped past the parser: empty period,
	// stray parentheses, empty string, missing period.
	f.Add("()")
	f.Add("w()")
	f.Add(")")
	f.Add("(.))")
	f.Add("")
	f.Add(".w")
	f.Add("(.")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseScenario(s)
		if err != nil {
			return
		}
		// Round trip through the string form.
		again, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", sc.String(), err)
		}
		if !again.Equal(sc) {
			t.Fatalf("round trip changed %q", s)
		}
		// Canonicalization preserves the ω-word and is idempotent.
		c := sc.Canonical()
		if !c.Equal(sc) {
			t.Fatalf("Canonical changed the ω-word of %q", s)
		}
		if c.Canonical().String() != c.String() {
			t.Fatalf("Canonical not idempotent on %q", s)
		}
	})
}

func FuzzScenarioEquality(f *testing.F) {
	f.Add([]byte{0, 1}, []byte{2}, []byte{0, 1, 2}, []byte{2, 2})
	f.Fuzz(func(t *testing.T, u1, v1, u2, v2 []byte) {
		if len(v1) == 0 || len(v2) == 0 || len(u1)+len(v1)+len(u2)+len(v2) > 24 {
			return
		}
		a := UPWord(bytesToWord(u1, Sigma), bytesToWord(v1, Sigma))
		b := UPWord(bytesToWord(u2, Sigma), bytesToWord(v2, Sigma))
		eq := a.Equal(b)
		// Semantic equality must match letter-by-letter comparison over a
		// long window.
		window := 3 * (len(u1) + len(v1) + len(u2) + len(v2) + 1)
		same := true
		for i := 0; i < window; i++ {
			if a.At(i) != b.At(i) {
				same = false
				break
			}
		}
		// A long common window implies equality for ultimately periodic
		// words of these sizes; conversely equality implies every position
		// agrees.
		if eq != same {
			t.Fatalf("Equal(%s,%s)=%v but window compare %v", a, b, eq, same)
		}
		if eq != a.Canonical().Equal(b.Canonical()) {
			t.Fatal("canonical equality mismatch")
		}
	})
}
