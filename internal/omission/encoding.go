package omission

import "fmt"

// Words and Scenarios marshal as their canonical text forms (".wb" and
// "u(v)"), making them directly usable in JSON payloads and flag values.

// MarshalText implements encoding.TextMarshaler.
func (w Word) MarshalText() ([]byte, error) { return []byte(w.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (w *Word) UnmarshalText(b []byte) error {
	parsed, err := ParseWord(string(b))
	if err != nil {
		return err
	}
	*w = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (s Scenario) MarshalText() ([]byte, error) {
	if len(s.period) == 0 {
		return nil, fmt.Errorf("omission: cannot marshal the zero Scenario")
	}
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Scenario) UnmarshalText(b []byte) error {
	parsed, err := ParseScenario(string(b))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}
