package omission

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFigure1 pins the exact index table of the paper's Figure 1 (words of
// length ≤ 2), under the repository's δ convention.
func TestFigure1(t *testing.T) {
	cases := []struct {
		w    string
		want int64
	}{
		{"", 0},
		// length 1
		{"b", 0}, {".", 1}, {"w", 2},
		// length 2, the "snake" ordering
		{"bb", 0}, {"b.", 1}, {"bw", 2},
		{".w", 3}, {"..", 4}, {".b", 5},
		{"wb", 6}, {"w.", 7}, {"ww", 8},
	}
	for _, c := range cases {
		got, err := IndexInt64(MustWord(c.w))
		if err != nil {
			t.Fatalf("IndexInt64(%q): %v", c.w, err)
		}
		if got != c.want {
			t.Errorf("ind(%q) = %d, want %d", c.w, got, c.want)
		}
		if big := Index(MustWord(c.w)); big.Int64() != c.want {
			t.Errorf("big ind(%q) = %v, want %d", c.w, big, c.want)
		}
	}
}

// TestPropositionIII3 checks ind(b^r) = 0 and ind(w^r) = 3^r − 1.
func TestPropositionIII3(t *testing.T) {
	for r := 0; r <= 20; r++ {
		if got, _ := IndexInt64(Uniform(LossBlack, r)); got != 0 {
			t.Errorf("ind(b^%d) = %d, want 0", r, got)
		}
		want := Pow3Int64(r) - 1
		if got, _ := IndexInt64(Uniform(LossWhite, r)); got != want {
			t.Errorf("ind(w^%d) = %d, want %d", r, got, want)
		}
	}
	// And beyond int64 range using big.Int.
	r := 120
	if Index(Uniform(LossBlack, r)).Sign() != 0 {
		t.Error("big ind(b^120) != 0")
	}
	want := new(big.Int).Sub(Pow3(r), big.NewInt(1))
	if Index(Uniform(LossWhite, r)).Cmp(want) != 0 {
		t.Error("big ind(w^120) != 3^120-1")
	}
}

// TestLemmaIII2 verifies exhaustively for r ≤ 8 that ind is a bijection
// from Γ^r onto [0, 3^r − 1].
func TestLemmaIII2(t *testing.T) {
	for r := 0; r <= 8; r++ {
		seen := make([]bool, Pow3Int64(r))
		for _, w := range AllWords(Gamma, r) {
			k, err := IndexInt64(w)
			if err != nil {
				t.Fatal(err)
			}
			if k < 0 || k >= int64(len(seen)) {
				t.Fatalf("ind(%v) = %d out of range [0,%d)", w, k, len(seen))
			}
			if seen[k] {
				t.Fatalf("ind not injective at %d (word %v)", k, w)
			}
			seen[k] = true
		}
		for k, ok := range seen {
			if !ok {
				t.Fatalf("r=%d: index %d not attained", r, k)
			}
		}
	}
}

func TestUnIndexInverse(t *testing.T) {
	for r := 0; r <= 7; r++ {
		for _, w := range AllWords(Gamma, r) {
			k, _ := IndexInt64(w)
			if got := UnIndexInt64(r, k); !got.Equal(w) {
				t.Fatalf("UnIndexInt64(%d,%d) = %v, want %v", r, k, got, w)
			}
			if got := UnIndex(r, big.NewInt(k)); !got.Equal(w) {
				t.Fatalf("UnIndex(%d,%d) = %v, want %v", r, k, got, w)
			}
		}
	}
}

func TestUnIndexQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(n % (MaxInt64Rounds + 1))
		w := randomWord(rng, r, Gamma)
		k, err := IndexInt64(w)
		if err != nil {
			return false
		}
		return UnIndexInt64(r, k).Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBigIndexMatchesInt64(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWord(rng, int(n%(MaxInt64Rounds+1)), Gamma)
		k, err := IndexInt64(w)
		if err != nil {
			return false
		}
		return Index(w).Int64() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexTrackerStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w := randomWord(rng, rng.Intn(60), Gamma)
		bt := NewIndexTracker()
		var it Int64Tracker
		for i, a := range w {
			prefix := w[:i+1]
			got := bt.Step(a)
			if got.Cmp(Index(prefix)) != 0 {
				t.Fatalf("tracker diverged at %v: %v vs %v", prefix, got, Index(prefix))
			}
			if bt.Round() != i+1 {
				t.Fatalf("Round() = %d, want %d", bt.Round(), i+1)
			}
			if bt.Parity() != Index(prefix).Bit(0) {
				t.Fatal("Parity mismatch")
			}
			if i < MaxInt64Rounds {
				if got64 := it.Step(a); big.NewInt(got64).Cmp(got) != 0 {
					t.Fatalf("int64 tracker diverged at %v", prefix)
				}
			}
		}
		// Clone must be independent.
		c := bt.Clone()
		c.Step(None)
		if bt.Value().Cmp(Index(w)) != 0 {
			t.Fatal("Clone not independent")
		}
	}
}

func TestIndexPanicsOnDoubleOmission(t *testing.T) {
	assertPanics(t, func() { Index(MustWord("x")) })
	assertPanics(t, func() { NewIndexTracker().Step(LossBoth) })
	assertPanics(t, func() { new(Int64Tracker).Step(LossBoth) })
	if _, err := IndexInt64(MustWord(".x")); err == nil {
		t.Error("IndexInt64 should reject double omission")
	}
	if _, err := IndexInt64(Uniform(None, MaxInt64Rounds+1)); err == nil {
		t.Error("IndexInt64 should reject overlong words")
	}
}

func TestUnIndexPanicsOutOfRange(t *testing.T) {
	assertPanics(t, func() { UnIndexInt64(2, 9) })
	assertPanics(t, func() { UnIndexInt64(2, -1) })
	assertPanics(t, func() { UnIndex(2, big.NewInt(9)) })
	assertPanics(t, func() { Pow3Int64(MaxInt64Rounds + 1) })
	assertPanics(t, func() {
		var tr Int64Tracker
		for i := 0; i <= MaxInt64Rounds; i++ {
			tr.Step(None)
		}
	})
}

// TestAdjacentWord checks the chain-walk helper against the bijection.
func TestAdjacentWord(t *testing.T) {
	for r := 1; r <= 6; r++ {
		w := Uniform(LossBlack, r) // index 0
		count := int64(0)
		for {
			next, ok := AdjacentWord(w)
			if !ok {
				break
			}
			ki, _ := IndexInt64(w)
			kn, _ := IndexInt64(next)
			if kn != ki+1 {
				t.Fatalf("AdjacentWord(%v) = %v: indices %d -> %d", w, next, ki, kn)
			}
			w = next
			count++
		}
		if count != Pow3Int64(r)-1 {
			t.Fatalf("chain at r=%d has %d steps, want %d", r, count, Pow3Int64(r)-1)
		}
		if !w.Equal(Uniform(LossWhite, r)) {
			t.Fatalf("chain should end at w^%d, got %v", r, w)
		}
	}
}

// TestLemmaIII4Structure verifies the structural characterization of
// index-adjacent words: consecutive words either share their length-(r−1)
// prefix and differ in a prescribed last-letter pair determined by the
// prefix parity, or have index-adjacent prefixes and share the same last
// letter (the "boundary" letter, again determined by parity).
func TestLemmaIII4Structure(t *testing.T) {
	for r := 1; r <= 7; r++ {
		for k := int64(0); k < Pow3Int64(r)-1; k++ {
			v := UnIndexInt64(r, k)
			v2 := UnIndexInt64(r, k+1)
			u, a := v[:r-1], v[r-1]
			u2, a2 := v2[:r-1], v2[r-1]
			pu, _ := IndexInt64(Word(u).Clone())
			pu2, _ := IndexInt64(Word(u2).Clone())
			switch {
			case Word(u).Equal(Word(u2)):
				// Same prefix: last letters step through the snake order:
				// even prefix: b -> . -> w ; odd prefix: w -> . -> b.
				var ok bool
				if pu%2 == 0 {
					ok = (a == LossBlack && a2 == None) || (a == None && a2 == LossWhite)
				} else {
					ok = (a == LossWhite && a2 == None) || (a == None && a2 == LossBlack)
				}
				if !ok {
					t.Fatalf("r=%d k=%d: same-prefix step %v -> %v violates Lemma III.4", r, k, v, v2)
				}
			case pu2 == pu+1:
				// Boundary between prefixes: letters equal; the boundary
				// letter is 'w' when the lower prefix index is even, 'b'
				// when odd.
				if a != a2 {
					t.Fatalf("r=%d k=%d: boundary step %v -> %v with different letters", r, k, v, v2)
				}
				want := LossWhite
				if pu%2 == 1 {
					want = LossBlack
				}
				if a != want {
					t.Fatalf("r=%d k=%d: boundary letter %v, want %v", r, k, a, want)
				}
			default:
				t.Fatalf("r=%d k=%d: %v -> %v neither same-prefix nor adjacent-prefix", r, k, v, v2)
			}
		}
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestUnIndexChecked pins the satellite bugfix: the checked variants
// return errors instead of panicking on out-of-range input, and agree
// with the panicking forms in range.
func TestUnIndexChecked(t *testing.T) {
	// In-range agreement.
	for r := 0; r <= 5; r++ {
		for k := int64(0); k < Pow3Int64(r); k++ {
			w, err := UnIndexInt64Checked(r, k)
			if err != nil {
				t.Fatalf("UnIndexInt64Checked(%d, %d): %v", r, k, err)
			}
			if !w.Equal(UnIndexInt64(r, k)) {
				t.Fatalf("checked/panicking mismatch at r=%d k=%d", r, k)
			}
			wb, err := UnIndexChecked(r, big.NewInt(k))
			if err != nil {
				t.Fatalf("UnIndexChecked(%d, %d): %v", r, k, err)
			}
			if !wb.Equal(w) {
				t.Fatalf("big/int64 mismatch at r=%d k=%d", r, k)
			}
		}
	}
	// Errors, not panics.
	if _, err := UnIndexInt64Checked(2, -1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := UnIndexInt64Checked(2, 9); err == nil {
		t.Error("index 3^r should error")
	}
	if _, err := UnIndexInt64Checked(-1, 0); err == nil {
		t.Error("negative length should error")
	}
	if _, err := UnIndexChecked(-1, big.NewInt(0)); err == nil {
		t.Error("negative length should error (big)")
	}
	if _, err := UnIndexChecked(2, nil); err == nil {
		t.Error("nil index should error")
	}
	if _, err := UnIndexChecked(1, big.NewInt(-5)); err == nil {
		t.Error("negative big index should error")
	}
}

// TestUnIndexCheckedInt64Boundary covers r = MaxInt64Rounds (= 39), the
// largest length whose full index range fits in an int64, and the first
// length beyond it.
func TestUnIndexCheckedInt64Boundary(t *testing.T) {
	r := MaxInt64Rounds
	maxK := Pow3Int64(r) - 1 // 3^39 − 1 still fits
	w, err := UnIndexInt64Checked(r, maxK)
	if err != nil {
		t.Fatalf("UnIndexInt64Checked(%d, max): %v", r, err)
	}
	if len(w) != r {
		t.Fatalf("length %d, want %d", len(w), r)
	}
	// Round-trip through the streaming tracker.
	var tr Int64Tracker
	for _, a := range w {
		tr.Step(a)
	}
	if tr.Value() != maxK {
		t.Fatalf("round-trip: ind = %d, want %d", tr.Value(), maxK)
	}
	if _, err := UnIndexInt64Checked(r, maxK+1); err == nil {
		t.Error("index 3^39 should be out of range")
	}
	// r = 40: the int64 path must refuse, the big path must work.
	if _, err := UnIndexInt64Checked(r+1, 0); err == nil {
		t.Error("length 40 should exceed the int64-safe bound")
	}
	big40 := new(big.Int).Sub(Pow3(r+1), big.NewInt(1))
	wb, err := UnIndexChecked(r+1, big40)
	if err != nil {
		t.Fatalf("UnIndexChecked(40, 3^40-1): %v", err)
	}
	if got := Index(wb); got.Cmp(big40) != 0 {
		t.Fatalf("round-trip at r=40: ind = %v, want %v", got, big40)
	}
}

// TestIndexInt64AtSafeBound exercises the forward direction at exactly
// the int64-safe round bound r = MaxInt64Rounds: the extremal words
// still index (and round-trip) in scalar arithmetic, the scalar and
// big powers agree, and one more round is rejected rather than
// silently overflowed.
func TestIndexInt64AtSafeBound(t *testing.T) {
	r := MaxInt64Rounds
	wantTop := new(big.Int).Sub(Pow3(r), big.NewInt(1))
	if !wantTop.IsInt64() {
		t.Fatalf("3^%d - 1 should fit int64", r)
	}
	if got := Pow3Int64(r); got != wantTop.Int64()+1 {
		t.Fatalf("Pow3Int64(%d) = %d, want %v", r, got, Pow3(r))
	}
	top, err := IndexInt64(Uniform(LossWhite, r))
	if err != nil || top != wantTop.Int64() {
		t.Fatalf("ind(w^%d) = %d, %v, want %d", r, top, err, wantTop.Int64())
	}
	bot, err := IndexInt64(Uniform(LossBlack, r))
	if err != nil || bot != 0 {
		t.Fatalf("ind(b^%d) = %d, %v, want 0", r, bot, err)
	}
	if w := UnIndexInt64(r, top); !w.Equal(Uniform(LossWhite, r)) {
		t.Fatalf("UnIndexInt64(%d, top) = %v", r, w)
	}
	if _, err := IndexInt64(Uniform(None, r+1)); err == nil {
		t.Error("IndexInt64 must reject length MaxInt64Rounds+1")
	}
}
