package chain

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// This file freezes the PR-4 incremental engine as a benchmark
// baseline: a Go-map interner with a creation log, fresh worst-case
// frontier slices every round, and a separate leaf scan per horizon —
// byte-for-byte the data-structure choices of the engine this PR
// replaces (see git history, internal/fullinfo/incremental.go at the
// PR-4 merge). BENCH_5's ≥5x speedup claim is measured against this
// reimplementation so the comparison survives the old code's deletion.

type pr4ViewKey struct{ prev, recv int }

type pr4Interner struct {
	views map[pr4ViewKey]int
	next  int
	log   []pr4ViewKey
}

func (in *pr4Interner) view(prev, recv int) int {
	k := pr4ViewKey{prev, recv}
	if id, ok := in.views[k]; ok {
		return id
	}
	id := in.next
	in.next++
	in.views[k] = id
	in.log = append(in.log, k)
	return id
}

type pr4Engine struct {
	dfa     *scheme.PrefixDFA
	in      *pr4Interner
	horizon int
	states  []int
	inputs  []int32
	views   []int // 2 per node: white, black
}

func newPR4Engine(s *scheme.Scheme) *pr4Engine {
	e := &pr4Engine{
		dfa: s.PrefixDFA(),
		in:  &pr4Interner{views: map[pr4ViewKey]int{}},
	}
	if start := e.dfa.Start(); start >= 0 {
		for inputs := 0; inputs < 4; inputs++ {
			e.states = append(e.states, start)
			e.inputs = append(e.inputs, int32(inputs))
			e.views = append(e.views,
				fullinfo.InitView(inputs&1), fullinfo.InitView((inputs>>1)&1))
		}
	}
	return e
}

func (e *pr4Engine) grow() {
	na := e.dfa.Alphabet()
	nodes := len(e.states)
	nextStates := make([]int, 0, nodes*na)
	nextInputs := make([]int32, 0, nodes*na)
	nextViews := make([]int, 0, nodes*na*2)
	for i := 0; i < nodes; i++ {
		w, b := e.views[2*i], e.views[2*i+1]
		for a := 0; a < na; a++ {
			ns := e.dfa.Step(e.states[i], a)
			if ns < 0 {
				continue
			}
			l := omission.Letter(a)
			rw, rb := b, w
			if l.LostBlack() {
				rw = -1
			}
			if l.LostWhite() {
				rb = -1
			}
			nextStates = append(nextStates, ns)
			nextInputs = append(nextInputs, e.inputs[i])
			nextViews = append(nextViews, e.in.view(w, rw), e.in.view(b, rb))
		}
	}
	e.states, e.inputs, e.views = nextStates, nextInputs, nextViews
	e.horizon++
}

// scan mirrors PR-4's separate leaf pass: a fresh dense (view, proc)
// vertex table over the whole interner history plus a flagged
// union-find, early-exiting on the first mixed component.
func (e *pr4Engine) scan() (solvable bool, configs int64) {
	type uf struct {
		parent []int32
		rank   []int8
		flag   []uint8
		mixed  int
	}
	u := uf{}
	add := func() int32 {
		id := int32(len(u.parent))
		u.parent = append(u.parent, id)
		u.rank = append(u.rank, 0)
		u.flag = append(u.flag, 0)
		return id
	}
	find := func(x int32) int32 {
		for u.parent[x] != x {
			u.parent[x] = u.parent[u.parent[x]]
			x = u.parent[x]
		}
		return x
	}
	const has0, has1, mixed = 1, 2, 3
	mark := func(r int32, f uint8) {
		if m := u.flag[r] | f; m != u.flag[r] {
			u.flag[r] = m
			if m == mixed {
				u.mixed++
			}
		}
	}
	vert := make([]int32, (e.in.next+3)*2)
	vertex := func(proc, view int) int32 {
		slot := &vert[(view+3)*2+proc]
		if *slot == 0 {
			*slot = add() + 1
		}
		return *slot - 1
	}
	for i := 0; i < len(e.states); i++ {
		configs++
		ra := find(vertex(0, e.views[2*i]))
		rb := find(vertex(1, e.views[2*i+1]))
		root := ra
		if ra != rb {
			if u.rank[ra] < u.rank[rb] {
				ra, rb = rb, ra
			}
			u.parent[rb] = ra
			if u.rank[ra] == u.rank[rb] {
				u.rank[ra]++
			}
			fa, fb := u.flag[ra], u.flag[rb]
			if fa == mixed {
				u.mixed--
			}
			if fb == mixed {
				u.mixed--
			}
			u.flag[ra] = fa | fb
			if fa|fb == mixed {
				u.mixed++
			}
			root = ra
		}
		switch e.inputs[i] {
		case 0:
			mark(find(root), has0)
		case 3:
			mark(find(root), has1)
		}
		if u.mixed > 0 {
			return false, configs // VerdictOnly early exit
		}
	}
	return u.mixed == 0, configs
}

// minRounds runs the PR-4 MinRounds loop: extend one round, scan, stop
// at the first solvable horizon.
func (e *pr4Engine) minRounds(maxR int) (int, bool) {
	for r := 0; r <= maxR; r++ {
		for e.horizon < r {
			e.grow()
		}
		if ok, _ := e.scan(); ok {
			return r, true
		}
	}
	return 0, false
}

// TestPR4BaselineFaithful cross-checks the frozen baseline against the
// current engine on every named scheme: same verdict per horizon and
// same config counts on exhaustive horizons. A baseline that drifted
// would make the benchmark ratio meaningless.
func TestPR4BaselineFaithful(t *testing.T) {
	ctx := context.Background()
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := newPR4Engine(s)
		// BackendEnumerate: the parity claim is about the enumerating
		// engine the baseline was frozen against.
		eng := fullinfo.NewEngine(newChainStepper(s), fullinfo.Options{Backend: fullinfo.BackendEnumerate})
		for r := 0; r <= 5; r++ {
			for base.horizon < r {
				base.grow()
			}
			okBase, configs := base.scan()
			want, err := eng.ExtendTo(ctx, r)
			if err != nil {
				t.Fatal(err)
			}
			if okBase != want.Solvable {
				t.Fatalf("%s r=%d: baseline solvable=%v, engine %v", name, r, okBase, want.Solvable)
			}
			if okBase && configs != want.Configs {
				t.Fatalf("%s r=%d: baseline configs=%d, engine %d", name, r, configs, want.Configs)
			}
		}
	}
}

// bench5MaxR is the horizon BENCH_5 measures at; override with
// BENCH5_MAXR. 13 keeps the PR-4 baseline's single iteration under five
// seconds while its map-and-GC costs are far enough into their
// superlinear regime that the measured speedup clears the 5x bar with
// margin (the gap keeps widening with depth).
func bench5MaxR() int {
	if v := os.Getenv("BENCH5_MAXR"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return 13
}

// BenchmarkMinRoundsDedupVsPR4 is the BENCH_5 pair: the same R1
// MinRounds/VerdictOnly search on the frozen PR-4 baseline and on the
// hash-consed incremental engine in its shipped configuration
// (DedupAuto: the frontier is probed until dedupAutoPatience hit-free
// rounds prove it injective, then probing stops). The dedup run also
// reports the measured frontier dedup ratio over the probed rounds —
// exactly 1.0 on R1, whose chain views are history-injective; see
// DESIGN.md for why the speedup therefore comes from the sharded
// interner, fused scan, and flat tables rather than from collapse.
func BenchmarkMinRoundsDedupVsPR4(b *testing.B) {
	s, err := scheme.ByName("R1")
	if err != nil {
		b.Fatal(err)
	}
	maxR := bench5MaxR()
	b.Run("pr4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := newPR4Engine(s).minRounds(maxR); ok {
				b.Fatal("R1 must be unsolvable")
			}
		}
	})
	b.Run("dedup", func(b *testing.B) {
		b.ReportAllocs()
		var raw, distinct int64
		for i := 0; i < b.N; i++ {
			raw, distinct = 0, 0
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true,
				// Pin the enumerating engine: BENCH_5 measures the
				// dedup'd flat-table walk, not the symbolic backend
				// (BENCH_6 measures that).
				Engine: &fullinfo.Options{Backend: fullinfo.BackendEnumerate, Parallel: true},
				Observer: func(st fullinfo.Stats) {
					raw += st.FrontierRaw
					distinct += st.FrontierDistinct
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Found {
				b.Fatal("R1 must be unsolvable")
			}
		}
		if distinct > 0 {
			b.ReportMetric(float64(raw)/float64(distinct), "dedup_ratio")
		}
	})
}
