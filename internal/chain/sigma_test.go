package chain

import (
	"testing"

	"repro/internal/buchi"
	"repro/internal/scheme"
)

// TestSigmaSchemes exercises the bounded-horizon analysis beyond Γ —
// double-omission schemes are outside Theorem III.8's regime, but the
// full-information analysis decides their bounded-round solvability.
func TestSigmaSchemes(t *testing.T) {
	// Σ^ω: never solvable at any horizon.
	for r := 0; r <= 4; r++ {
		if SolvableInRounds(scheme.S2(), r) {
			t.Fatalf("Σ^ω solvable at horizon %d", r)
		}
	}
	// The all-or-nothing channel with a blackout budget: solvable at
	// exactly k+1 (every length-(k+1) word contains a clean round, which
	// is common knowledge).
	for k := 0; k <= 3; k++ {
		s := scheme.BlackoutBudget(k)
		got, ok := MinRoundsSearch(s, k+3)
		if !ok || got != k+1 {
			t.Fatalf("BX%d: first solvable horizon %d (ok=%v), want %d", k, got, ok, k+1)
		}
	}
	// The unrestricted all-or-nothing channel {., x}^ω: never solvable
	// (the adversary may black out forever).
	allOrNothing := scheme.MustNew("dotx", "{., x}^ω", onlyDotX())
	for r := 0; r <= 4; r++ {
		if SolvableInRounds(allOrNothing, r) {
			t.Fatalf("{., x}^ω solvable at horizon %d", r)
		}
	}
	// Σ with at most k lost messages (x costs 2): solvable at k+1 — the
	// f+1 bound extends to the double-omission metric. (With x available
	// but the budget counting it twice, the worst chain is still k single
	// losses... verify the exact horizon experimentally.)
	for k := 0; k <= 2; k++ {
		s := scheme.SigmaAtMostKLostMessages(k)
		got, ok := MinRoundsSearch(s, k+3)
		if !ok || got != k+1 {
			t.Fatalf("ΣK%d: first solvable horizon %d (ok=%v), want %d", k, got, ok, k+1)
		}
	}
	// Γ-scheme with the same budget matches (cross-check against the
	// classifier's Corollary III.14 bound).
	for k := 0; k <= 2; k++ {
		got, ok := MinRoundsSearch(scheme.AtMostKLosses(k), k+3)
		if !ok || got != k+1 {
			t.Fatalf("K%d: horizon %d", k, got)
		}
	}
}

// onlyDotX builds the Σ-DBA for {., x}^ω.
func onlyDotX() *buchi.DBA {
	return &buchi.DBA{
		Alphabet: 4,
		Start:    0,
		Delta: [][]buchi.State{
			{0, 1, 1, 0},
			{1, 1, 1, 1},
		},
		Accepting: []bool{true, false},
	}
}
