package chain

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// analyzeBackend runs the fixed-horizon analysis with an explicit
// backend selection.
func analyzeBackend(t *testing.T, s *scheme.Scheme, r int, b fullinfo.BackendMode) Report {
	t.Helper()
	rep, err := Analyze(context.Background(), Request{
		Scheme: s, Horizon: r,
		Engine: &fullinfo.Options{Backend: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSymbolicMatchesEnumerateAllSchemes is the tentpole differential:
// on every named scheme — letter-uniform DFAs the interval walk carries
// forever (R1, Fair), fragmenting ones that fall back (TW, S1, K*), and
// Σ schemes the backend refuses (S2, FairSigma) — the symbolic,
// enumerating, and sequential analyses must agree field for field.
func TestSymbolicMatchesEnumerateAllSchemes(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 5; r++ {
			want := AnalyzeSequential(s, r)
			enum := analyzeBackend(t, s, r, fullinfo.BackendEnumerate)
			sym := analyzeBackend(t, s, r, fullinfo.BackendSymbolic)
			if enum.Analysis != want {
				t.Errorf("%s r=%d: enumerate %+v != sequential %+v", name, r, enum.Analysis, want)
			}
			if sym.Analysis != want {
				t.Errorf("%s r=%d: symbolic %+v != sequential %+v", name, r, sym.Analysis, want)
			}
			if sym.Found != enum.Found {
				t.Errorf("%s r=%d: symbolic Found=%v enumerate Found=%v", name, r, sym.Found, enum.Found)
			}
		}
	}
}

// TestSymbolicMinRoundsMatches pins the MinRounds search across
// backends on every named scheme: same found horizon, same verdict.
func TestSymbolicMinRoundsMatches(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var reps [2]Report
		for i, b := range []fullinfo.BackendMode{fullinfo.BackendEnumerate, fullinfo.BackendSymbolic} {
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: 6, MinRounds: true, VerdictOnly: true,
				Engine: &fullinfo.Options{Backend: b},
			})
			if err != nil {
				t.Fatal(err)
			}
			reps[i] = rep
		}
		if reps[0].Found != reps[1].Found || reps[0].Rounds != reps[1].Rounds {
			t.Errorf("%s: enumerate (found=%v r=%d) != symbolic (found=%v r=%d)",
				name, reps[0].Found, reps[0].Rounds, reps[1].Found, reps[1].Rounds)
		}
	}
}

// TestDeprecatedSearchMatchesBackends: the deprecated MinRoundsSearch
// wrappers route through the default (auto) backend selection; their
// answers must coincide with both explicit backends.
func TestDeprecatedSearchMatchesBackends(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := MinRoundsSearch(s, 6)
		rc, okc, err := MinRoundsSearchChecked(context.Background(), s, 6)
		if err != nil {
			t.Fatal(err)
		}
		if r != rc || ok != okc {
			t.Errorf("%s: MinRoundsSearch (%d,%v) != Checked (%d,%v)", name, r, ok, rc, okc)
		}
		for _, b := range []fullinfo.BackendMode{fullinfo.BackendEnumerate, fullinfo.BackendSymbolic} {
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: 6, MinRounds: true, VerdictOnly: true,
				Engine: &fullinfo.Options{Backend: b},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Found != ok || (ok && rep.Rounds != r) {
				t.Errorf("%s backend %v: (found=%v r=%d) != deprecated (%v,%d)",
					name, b, rep.Found, rep.Rounds, ok, r)
			}
		}
	}
}

// TestSymbolicHorizonBeyondEnumeration is the headline capability and
// the overflow satellite in one: R1 at horizon 45 has 4·3^45 ≈ 1.2e22
// configurations — no enumeration finishes — yet the symbolic analysis
// answers instantly, saturating Configs and carrying the exact count.
func TestSymbolicHorizonBeyondEnumeration(t *testing.T) {
	s, err := scheme.ByName("R1")
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeBackend(t, s, 45, fullinfo.BackendSymbolic)
	if rep.Solvable {
		t.Fatal("R1 solvable at horizon 45 — contradicts the Coordinated Attack impossibility")
	}
	if rep.Configs != math.MaxInt {
		t.Fatalf("Configs = %d, want saturated MaxInt", rep.Configs)
	}
	want := omission.Pow3(45)
	want.Lsh(want, 2)
	if rep.ConfigsExact == nil || rep.ConfigsExact.Cmp(want) != 0 {
		t.Fatalf("ConfigsExact = %v, want 4·3^45 = %v", rep.ConfigsExact, want)
	}
	if rep.Stats.SymbolicRounds == 0 || rep.Stats.SymbolicFallbacks != 0 {
		t.Fatalf("R1 should stay symbolic: %+v", rep.Stats)
	}

	// A MinRounds sweep across 41 horizons — each beyond enumeration by
	// its end — completes without finding a solvable one.
	deep, err := Analyze(context.Background(), Request{
		Scheme: s, Horizon: 41, MinRounds: true, VerdictOnly: true,
		Engine: &fullinfo.Options{Backend: fullinfo.BackendSymbolic},
	})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Found {
		t.Fatalf("R1 MinRounds found %d", deep.Rounds)
	}
}

// FuzzSymbolicVsReference is the backend oracle over random DBA
// schemes: whatever automaton Random produces, the symbolic analysis
// (with its fallback) must equal the sequential reference.
func FuzzSymbolicVsReference(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(4))
	f.Add(uint64(42), uint8(3), uint8(5))
	f.Add(uint64(0xfe5a7), uint8(4), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, states, horizon uint8) {
		s := scheme.Random(rand.New(rand.NewSource(int64(seed))), int(states%5)+1)
		r := int(horizon % 7)
		want := AnalyzeSequential(s, r)
		for _, b := range []fullinfo.BackendMode{fullinfo.BackendSymbolic, fullinfo.BackendAuto} {
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: r,
				Engine: &fullinfo.Options{Backend: b},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Analysis != want {
				t.Fatalf("scheme %s r=%d backend %v: %+v != sequential %+v",
					s.Name(), r, b, rep.Analysis, want)
			}
		}
	})
}
