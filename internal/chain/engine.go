package chain

import (
	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// chainStepper adapts the two-process analysis to the fullinfo engine:
// actions are the scheme's alphabet letters, admissibility is the
// compiled prefix DFA, and a step updates white's and black's
// full-information views. Process 0 is white, process 1 is black.
type chainStepper struct {
	dfa *scheme.PrefixDFA
}

func newChainStepper(s *scheme.Scheme) chainStepper {
	return chainStepper{dfa: s.PrefixDFA()}
}

func (st chainStepper) NumProcs() int   { return 2 }
func (st chainStepper) NumActions() int { return st.dfa.Alphabet() }

func (st chainStepper) Root() (int, bool) {
	start := st.dfa.Start()
	return start, start >= 0
}

func (st chainStepper) Step(ctx *fullinfo.Ctx, state, a int, views, next []int) (int, bool) {
	ns := st.dfa.Step(state, a)
	if ns < 0 {
		return 0, false
	}
	// White receives black's view unless black's message is lost; black
	// receives white's unless white's is lost.
	l := omission.Letter(a)
	rw, rb := views[1], views[0]
	if l.LostBlack() {
		rw = -1
	}
	if l.LostWhite() {
		rb = -1
	}
	next[0] = ctx.View(views[0], rw)
	next[1] = ctx.View(views[1], rb)
	return ns, true
}
