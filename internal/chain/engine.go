package chain

import (
	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// chainStepper adapts the two-process analysis to the fullinfo engine:
// actions are the scheme's alphabet letters, admissibility is the
// compiled prefix DFA, and a step updates white's and black's
// full-information views. Process 0 is white, process 1 is black.
type chainStepper struct {
	dfa *scheme.PrefixDFA
}

func newChainStepper(s *scheme.Scheme) chainStepper {
	return chainStepper{dfa: s.PrefixDFA()}
}

func (st chainStepper) NumProcs() int   { return 2 }
func (st chainStepper) NumActions() int { return st.dfa.Alphabet() }

func (st chainStepper) Root() (int, bool) {
	start := st.dfa.Start()
	return start, start >= 0
}

func (st chainStepper) Step(ctx *fullinfo.Ctx, state, a int, views, next []int) (int, bool) {
	ns := st.dfa.Step(state, a)
	if ns < 0 {
		return 0, false
	}
	// White receives black's view unless black's message is lost; black
	// receives white's unless white's is lost.
	l := omission.Letter(a)
	rw, rb := views[1], views[0]
	if l.LostBlack() {
		rw = -1
	}
	if l.LostWhite() {
		rb = -1
	}
	next[0] = ctx.View(views[0], rw)
	next[1] = ctx.View(views[1], rb)
	return ns, true
}

// SymbolicSpec exposes the prefix DFA to the symbolic index-interval
// backend, re-keyed by child offset under an even parent index:
// offset 0 is LossBlack (δ = −1), 1 is None (δ = 0), 2 is LossWhite
// (δ = +1) — Definition III.1's index recurrence. Σ-alphabet schemes
// qualify only when the double omission is dead from every state (the
// index bijection is a Γ^r statement); otherwise ok=false routes the
// analysis to the enumerating engine.
func (st chainStepper) SymbolicSpec() (fullinfo.SymbolicSpec, bool) {
	d := st.dfa
	start := d.Start()
	if start < 0 {
		return fullinfo.SymbolicSpec{Base: 3, Start: -1}, true
	}
	n := d.NumStates()
	if d.Alphabet() > len(omission.Gamma) {
		for s := 0; s < n; s++ {
			if d.StepLetter(s, omission.LossBoth) >= 0 {
				return fullinfo.SymbolicSpec{}, false
			}
		}
	}
	next := make([]int32, n*3)
	for s := 0; s < n; s++ {
		next[s*3+0] = int32(d.StepLetter(s, omission.LossBlack))
		next[s*3+1] = int32(d.StepLetter(s, omission.None))
		next[s*3+2] = int32(d.StepLetter(s, omission.LossWhite))
	}
	return fullinfo.SymbolicSpec{Base: 3, Start: start, Next: next}, true
}
