package chain

import (
	"context"

	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// chainStepper adapts the two-process analysis to the fullinfo engine:
// actions are the scheme's alphabet letters, admissibility is the
// compiled prefix DFA, and a step updates white's and black's
// full-information views. Process 0 is white, process 1 is black.
type chainStepper struct {
	dfa *scheme.PrefixDFA
}

func newChainStepper(s *scheme.Scheme) chainStepper {
	return chainStepper{dfa: s.PrefixDFA()}
}

func (st chainStepper) NumProcs() int   { return 2 }
func (st chainStepper) NumActions() int { return st.dfa.Alphabet() }

func (st chainStepper) Root() (int, bool) {
	start := st.dfa.Start()
	return start, start >= 0
}

func (st chainStepper) Step(ctx *fullinfo.Ctx, state, a int, views, next []int) (int, bool) {
	ns := st.dfa.Step(state, a)
	if ns < 0 {
		return 0, false
	}
	// White receives black's view unless black's message is lost; black
	// receives white's unless white's is lost.
	l := omission.Letter(a)
	rw, rb := views[1], views[0]
	if l.LostBlack() {
		rw = -1
	}
	if l.LostWhite() {
		rb = -1
	}
	next[0] = ctx.In.View(views[0], rw)
	next[1] = ctx.In.View(views[1], rb)
	return ns, true
}

// AnalyzeOpt computes the r-round solvability analysis with explicit
// engine options. It returns results identical to AnalyzeSequential
// (the differential tests pin this) while streaming configurations
// through per-worker union-finds instead of materializing them.
func AnalyzeOpt(s *scheme.Scheme, r int, opt fullinfo.Options) Analysis {
	res, _ := fullinfo.Run(newChainStepper(s), r, opt)
	return Analysis{
		Rounds:          r,
		Configs:         int(res.Configs),
		Components:      res.Components,
		Solvable:        res.Solvable,
		MixedComponents: res.MixedComponents,
	}
}

// Analyze computes the r-round solvability analysis for the scheme using
// the parallel streaming engine.
func Analyze(s *scheme.Scheme, r int) Analysis {
	return AnalyzeOpt(s, r, fullinfo.Defaults())
}

// SolvableInRounds reports whether an r-round consensus algorithm exists
// for the scheme. It aborts the exploration on the first mixed
// component, so unsolvable horizons usually return long before the
// configuration space is exhausted.
func SolvableInRounds(s *scheme.Scheme, r int) bool {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _ := fullinfo.Run(newChainStepper(s), r, opt)
	return res.Solvable
}

// AnalyzeChecked is Analyze under a context: an expired or cancelled ctx
// aborts the engine walk at the next subtree boundary and surfaces
// ctx.Err(). Long-running callers (capserved, -timeout CLIs) use this
// instead of Analyze so a deadline propagates into the worker pool.
func AnalyzeChecked(ctx context.Context, s *scheme.Scheme, r int) (Analysis, error) {
	res, _, err := fullinfo.RunChecked(ctx, newChainStepper(s), r, fullinfo.Defaults())
	if err != nil {
		return Analysis{}, err
	}
	return Analysis{
		Rounds:          r,
		Configs:         int(res.Configs),
		Components:      res.Components,
		Solvable:        res.Solvable,
		MixedComponents: res.MixedComponents,
	}, nil
}

// SolvableInRoundsChecked is SolvableInRounds under a context.
func SolvableInRoundsChecked(ctx context.Context, s *scheme.Scheme, r int) (bool, error) {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _, err := fullinfo.RunChecked(ctx, newChainStepper(s), r, opt)
	if err != nil {
		return false, err
	}
	return res.Solvable, nil
}

// MinRoundsSearchChecked is MinRoundsSearch under a context; the first
// horizon whose walk the context interrupts aborts the whole search.
func MinRoundsSearchChecked(ctx context.Context, s *scheme.Scheme, maxR int) (int, bool, error) {
	for r := 0; r <= maxR; r++ {
		ok, err := SolvableInRoundsChecked(ctx, s, r)
		if err != nil {
			return 0, false, err
		}
		if ok {
			return r, true, nil
		}
	}
	return 0, false, nil
}
