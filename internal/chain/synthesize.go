package chain

import (
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Synthesize compiles an r-round consensus algorithm for the scheme
// directly out of the full-information analysis, when one exists: each
// connected component of the indistinguishability graph gets a decision
// value (forced by validity on components containing unanimous inputs),
// and each process decides at round r by looking up its own view's
// component. The synthesized algorithm is round-optimal by construction
// (Corollary III.14) and — unlike A_w — applies to schemes outside Γ^ω,
// including the double-omission schemes the paper leaves open.
//
// ok is false when the scheme is not r-round solvable.
func Synthesize(s *scheme.Scheme, r int) (white, black sim.Process, ok bool) {
	prog, ok := compile(s, r)
	if !ok {
		return nil, nil, false
	}
	return &synthesized{prog: prog}, &synthesized{prog: prog}, true
}

// program is the compiled decision structure shared by both processes.
type program struct {
	rounds int
	// step maps (view id, received view id or -1) to the next view id;
	// it is the interner's transition table restricted to reachable
	// configurations.
	step map[viewKey]int
	// decide maps a process's final view id to its decision, separately
	// per process identity: a white view can be structurally identical to
	// a black view (hence share an interner id) while lying in a
	// different component.
	decide [2]map[int]sim.Value
	// initView maps an input value to its initial view id.
	initView [2]int
}

// compile runs the enumeration once and extracts the program.
func compile(s *scheme.Scheme, r int) (*program, bool) {
	alphabet := alphabetOf(s)
	in := newInterner()
	init0 := in.id(-10, -10)
	init1 := in.id(-11, -11)
	initView := func(v sim.Value) int {
		if v == 0 {
			return init0
		}
		return init1
	}

	var configs []config
	var walk func(o *scheme.PrefixOracle, depth, vw, vb int, inputs [2]sim.Value)
	walk = func(o *scheme.PrefixOracle, depth, vw, vb int, inputs [2]sim.Value) {
		if depth == r {
			configs = append(configs, config{viewW: vw, viewB: vb, inputs: inputs})
			return
		}
		for _, a := range alphabet {
			if !o.CanStep(a) {
				continue
			}
			o2 := o.Clone()
			o2.Step(a)
			rw, rb := vb, vw
			if a.LostBlack() {
				rw = -1
			}
			if a.LostWhite() {
				rb = -1
			}
			walk(o2, depth+1, in.id(vw, rw), in.id(vb, rb), inputs)
		}
	}
	oracle := s.NewPrefixOracle()
	for _, inputs := range sim.AllInputs() {
		if oracle.Live() {
			walk(oracle.Clone(), 0, initView(inputs[0]), initView(inputs[1]), inputs)
		}
	}

	// Components over shared views.
	uf := newUnionFind(len(configs))
	byViewW := map[int]int{}
	byViewB := map[int]int{}
	for i, c := range configs {
		if j, seen := byViewW[c.viewW]; seen {
			uf.union(i, j)
		} else {
			byViewW[c.viewW] = i
		}
		if j, seen := byViewB[c.viewB]; seen {
			uf.union(i, j)
		} else {
			byViewB[c.viewB] = i
		}
	}
	type compInfo struct{ has0, has1 bool }
	comps := map[int]*compInfo{}
	for i, c := range configs {
		root := uf.find(i)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		if c.inputs == [2]sim.Value{0, 0} {
			ci.has0 = true
		}
		if c.inputs == [2]sim.Value{1, 1} {
			ci.has1 = true
		}
	}
	decisionOf := func(root int) (sim.Value, bool) {
		ci := comps[root]
		if ci.has0 && ci.has1 {
			return sim.None, false
		}
		if ci.has1 {
			return 1, true
		}
		// Components without unanimous-1 decide 0: every member then has
		// a 0 among its inputs (a component cannot mix (1,1) with others
		// unless has1, and any non-(1,1) config contains a 0).
		return 0, true
	}

	prog := &program{
		rounds:   r,
		step:     map[viewKey]int{},
		decide:   [2]map[int]sim.Value{{}, {}},
		initView: [2]int{init0, init1},
	}
	for k, v := range in.m {
		prog.step[k] = v
	}
	for i, c := range configs {
		d, ok := decisionOf(uf.find(i))
		if !ok {
			return nil, false
		}
		prog.decide[sim.White][c.viewW] = d
		prog.decide[sim.Black][c.viewB] = d
	}
	return prog, true
}

// SynthesisStats reports the compiled program's size for an r-round
// synthesis: the number of view-transition entries and of final decision
// entries. Used by the message/state-size experiments to contrast the
// uniform A_w (whose per-round state is one O(r·log 3)-bit integer) with
// the table-driven synthesized algorithm (whose tables grow with the
// configuration space).
func SynthesisStats(s *scheme.Scheme, r int) (transitions, decisions int, ok bool) {
	prog, ok := compile(s, r)
	if !ok {
		return 0, 0, false
	}
	return len(prog.step), len(prog.decide[sim.White]) + len(prog.decide[sim.Black]), true
}

// synthesized is the runtime process: it tracks its view id by exchanging
// view ids, then decides via the compiled table. Off-scheme executions
// (view transitions never enumerated) leave it undecided.
type synthesized struct {
	prog     *program
	id       sim.ID
	view     int
	broken   bool
	decision sim.Value
}

// Init implements sim.Process.
func (p *synthesized) Init(id sim.ID, input sim.Value) {
	p.id = id
	p.view = p.prog.initView[input&1]
	p.broken = false
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *synthesized) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None || p.broken {
		return nil, p.decision == sim.None && !p.broken
	}
	return p.view, true
}

// Receive implements sim.Process.
func (p *synthesized) Receive(r int, msg sim.Message) {
	if p.broken || p.decision != sim.None {
		return
	}
	recv := -1
	if msg != nil {
		recv = msg.(int)
	}
	next, ok := p.prog.step[viewKey{p.view, recv}]
	if !ok {
		p.broken = true
		return
	}
	p.view = next
	if r >= p.prog.rounds {
		d, ok := p.prog.decide[p.id][p.view]
		if !ok {
			p.broken = true
			return
		}
		p.decision = d
	}
}

// Decision implements sim.Process.
func (p *synthesized) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}
