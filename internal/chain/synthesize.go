package chain

import (
	"repro/internal/fullinfo"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Synthesize compiles an r-round consensus algorithm for the scheme
// directly out of the full-information analysis, when one exists: each
// connected component of the indistinguishability graph gets a decision
// value (forced by validity on components containing unanimous inputs),
// and each process decides at round r by looking up its own view's
// component. The synthesized algorithm is round-optimal by construction
// (Corollary III.14) and — unlike A_w — applies to schemes outside Γ^ω,
// including the double-omission schemes the paper leaves open.
//
// ok is false when the scheme is not r-round solvable.
func Synthesize(s *scheme.Scheme, r int) (white, black sim.Process, ok bool) {
	prog, ok := compile(s, r)
	if !ok {
		return nil, nil, false
	}
	return &synthesized{prog: prog}, &synthesized{prog: prog}, true
}

// program is the compiled decision structure shared by both processes.
type program struct {
	rounds int
	// step maps (view id, received view id or -1) to the next view id;
	// it is the interner's transition table restricted to reachable
	// configurations.
	step map[viewKey]int
	// decide maps a process's final view id to its decision, separately
	// per process identity: a white view can be structurally identical to
	// a black view (hence share an interner id) while lying in a
	// different component.
	decide [2]map[int]sim.Value
	// initView maps an input value to its initial view id.
	initView [2]int
}

// compile runs the streaming engine once with graph retention and
// extracts the program: the canonical interner's transition table
// becomes step, and each final (process, view) vertex decides by its
// component's unanimity flags — 1 when the component contains an
// all-1-input configuration, else 0 (every such component then has a 0
// among its members' inputs: a component cannot mix (1,1) with others
// without carrying the unanimous-1 flag, and any other config contains
// a 0).
func compile(s *scheme.Scheme, r int) (*program, bool) {
	opt := fullinfo.Defaults()
	opt.BuildGraph = true
	res, g := fullinfo.Run(newChainStepper(s), r, opt)
	if !res.Solvable {
		return nil, false
	}
	prog := &program{
		rounds:   r,
		step:     map[viewKey]int{},
		decide:   [2]map[int]sim.Value{{}, {}},
		initView: [2]int{fullinfo.InitView(0), fullinfo.InitView(1)},
	}
	g.EachView(func(prev, recv, id int) {
		prog.step[viewKey{prev, recv}] = id
	})
	g.EachVertex(func(proc, view int, has0, has1 bool) {
		var d sim.Value
		if has1 {
			d = 1
		}
		prog.decide[proc][view] = d
	})
	return prog, true
}

// SynthesisStats reports the compiled program's size for an r-round
// synthesis: the number of view-transition entries and of final decision
// entries. Used by the message/state-size experiments to contrast the
// uniform A_w (whose per-round state is one O(r·log 3)-bit integer) with
// the table-driven synthesized algorithm (whose tables grow with the
// configuration space).
func SynthesisStats(s *scheme.Scheme, r int) (transitions, decisions int, ok bool) {
	prog, ok := compile(s, r)
	if !ok {
		return 0, 0, false
	}
	return len(prog.step), len(prog.decide[sim.White]) + len(prog.decide[sim.Black]), true
}

// synthesized is the runtime process: it tracks its view id by exchanging
// view ids, then decides via the compiled table. Off-scheme executions
// (view transitions never enumerated) leave it undecided.
type synthesized struct {
	prog     *program
	id       sim.ID
	view     int
	broken   bool
	decision sim.Value
}

// Init implements sim.Process.
func (p *synthesized) Init(id sim.ID, input sim.Value) {
	p.id = id
	p.view = p.prog.initView[input&1]
	p.broken = false
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *synthesized) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None || p.broken {
		return nil, p.decision == sim.None && !p.broken
	}
	return p.view, true
}

// Receive implements sim.Process.
func (p *synthesized) Receive(r int, msg sim.Message) {
	if p.broken || p.decision != sim.None {
		return
	}
	recv := -1
	if msg != nil {
		recv = msg.(int)
	}
	next, ok := p.prog.step[viewKey{p.view, recv}]
	if !ok {
		p.broken = true
		return
	}
	p.view = next
	if r >= p.prog.rounds {
		d, ok := p.prog.decide[p.id][p.view]
		if !ok {
			p.broken = true
			return
		}
		p.decision = d
	}
}

// Decision implements sim.Process.
func (p *synthesized) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}
