// Package chain operationalizes the impossibility side of Fevat & Godard:
// bounded-round solvability analysis through full-information
// indistinguishability.
//
// A configuration is a pair (w, inputs) of a length-r scenario prefix
// w ∈ Pref(L) ∩ Γ^r and a binary input assignment. Any r-round algorithm
// is refined by the full-information protocol, so its decisions are
// functions of each process's full-information view; two configurations
// sharing a view for some process must receive the same decision. r-round
// consensus for L therefore exists iff no connected component of the
// "shares a view" graph contains both an all-0-input and an all-1-input
// configuration.
//
// For the full scheme Γ^ω this graph restricted to fixed inputs is — by
// Lemma III.4 / Corollary III.5 — exactly the path 0, 1, …, 3^r−1 in index
// order: the structural reason the Coordinated Attack Problem is
// unsolvable under "at most one loss per round". VerifyChainStructure
// checks this shape exhaustively.
package chain

import (
	"math/big"

	"repro/internal/fullinfo"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Analysis reports the bounded-round solvability computation.
type Analysis struct {
	// Rounds is the horizon r.
	Rounds int
	// Configs is the number of configurations |Pref(L) ∩ Γ^r| · 4,
	// saturated at math.MaxInt when the true count no longer fits (the
	// symbolic backend reaches 4·3^r past int range around r ≥ 39;
	// ConfigsExact then carries the exact value).
	Configs int
	// Components is the number of connected components of the
	// indistinguishability graph.
	Components int
	// Solvable reports whether an r-round consensus algorithm exists for
	// the scheme.
	Solvable bool
	// MixedComponents counts components containing both unanimous-0 and
	// unanimous-1 configurations (Solvable ⟺ MixedComponents == 0).
	MixedComponents int
	// ConfigsExact is the exact configuration count when it exceeds int
	// range (Configs is then saturated); nil otherwise, so Analysis
	// values at enumerable horizons stay comparable with ==.
	ConfigsExact *big.Int
}

// viewKey interns (previous view, received view) pairs; received = -1
// encodes a null reception.
type viewKey struct {
	prev, recv int
}

type interner struct {
	m    map[viewKey]int
	next int
}

func newInterner() *interner { return &interner{m: map[viewKey]int{}} }

func (in *interner) id(prev, recv int) int {
	k := viewKey{prev, recv}
	if id, ok := in.m[k]; ok {
		return id
	}
	id := in.next
	in.m[k] = id
	in.next++
	return id
}

// config is one leaf of the execution tree.
type config struct {
	viewW, viewB int
	inputs       [2]sim.Value
	word         omission.Word
}

// alphabetOf returns the letters a scheme's prefixes may use: Γ for
// Γ-schemes, Σ (including the double omission) for Σ-schemes. The
// full-information analysis itself is alphabet-agnostic — the letter only
// determines who receives null — which is what makes the bounded-horizon
// question decidable even for the double-omission schemes the paper
// leaves open.
func alphabetOf(s *scheme.Scheme) []omission.Letter {
	if s.OverGamma() {
		return omission.Gamma
	}
	return omission.Sigma
}

// enumerate walks every scenario prefix of the scheme up to length r for
// all four input pairs, producing the leaf configurations with interned
// full-information views.
func enumerate(s *scheme.Scheme, r int) []config {
	alphabet := alphabetOf(s)
	in := newInterner()
	var out []config
	// Initial views: input value 0 → view id base+0, 1 → base+1, distinct
	// per process identity is unnecessary (views are compared per-process).
	init0 := in.id(-10, -10)
	init1 := in.id(-11, -11)
	initView := func(v sim.Value) int {
		if v == 0 {
			return init0
		}
		return init1
	}
	oracle := s.NewPrefixOracle()
	var walk func(o *scheme.PrefixOracle, depth int, vw, vb int, word omission.Word, inputs [2]sim.Value)
	walk = func(o *scheme.PrefixOracle, depth, vw, vb int, word omission.Word, inputs [2]sim.Value) {
		if depth == r {
			out = append(out, config{viewW: vw, viewB: vb, inputs: inputs, word: word.Clone()})
			return
		}
		for _, a := range alphabet {
			if !o.CanStep(a) {
				continue
			}
			o2 := o.Clone()
			o2.Step(a)
			// White receives black's view unless black's message is lost;
			// black receives white's unless white's is lost.
			rw, rb := vb, vw
			if a.LostBlack() {
				rw = -1
			}
			if a.LostWhite() {
				rb = -1
			}
			walk(o2, depth+1, in.id(vw, rw), in.id(vb, rb), append(word, a), inputs)
		}
	}
	for _, inputs := range sim.AllInputs() {
		if oracle.Live() {
			walk(oracle.Clone(), 0, initView(inputs[0]), initView(inputs[1]), nil, inputs)
		}
	}
	return out
}

// unionFind is a plain disjoint-set structure.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p, rank: make([]int, n)}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// analyzeSequential computes the r-round solvability analysis with the
// original single-threaded materialize-then-union algorithm. It is the
// reference implementation the streaming engine is differentially
// tested against, reachable through Analyze with Request.Sequential —
// the only place the sequential walk exists.
func analyzeSequential(s *scheme.Scheme, r int) Analysis {
	configs := enumerate(s, r)
	uf := newUnionFind(len(configs))
	// Same white view (including same white input, which the view id
	// already encodes) ⇒ same component; likewise for black.
	byViewW := map[int]int{}
	byViewB := map[int]int{}
	for i, c := range configs {
		if j, ok := byViewW[c.viewW]; ok {
			uf.union(i, j)
		} else {
			byViewW[c.viewW] = i
		}
		if j, ok := byViewB[c.viewB]; ok {
			uf.union(i, j)
		} else {
			byViewB[c.viewB] = i
		}
	}
	type compInfo struct{ has0, has1 bool }
	comps := map[int]*compInfo{}
	for i, c := range configs {
		root := uf.find(i)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		if c.inputs == [2]sim.Value{0, 0} {
			ci.has0 = true
		}
		if c.inputs == [2]sim.Value{1, 1} {
			ci.has1 = true
		}
	}
	an := Analysis{Rounds: r, Configs: len(configs), Components: len(comps)}
	for _, ci := range comps {
		if ci.has0 && ci.has1 {
			an.MixedComponents++
		}
	}
	an.Solvable = an.MixedComponents == 0
	return an
}

// Complex describes the one-dimensional protocol complex at horizon r —
// the topological object the paper's conclusion points at ([BG93],
// [HS99], [SZ00]): vertices are (process, view) pairs, and every
// configuration is an edge joining white's and black's local views. For
// two processes, consensus solvability is exactly a connectivity
// question: the scheme is r-round solvable iff no connected component of
// the complex spans both unanimous input assignments.
type Complex struct {
	Rounds     int
	Vertices   int
	Edges      int
	Components int
	// Connected reports whether the whole complex is a single component
	// (which forces unsolvability at this horizon).
	Connected bool
}

// ProtocolComplex builds the complex over all four binary input pairs.
// The engine's (process, view) vertices and components are exactly the
// complex's, and each configuration contributes one edge.
func ProtocolComplex(s *scheme.Scheme, r int) Complex {
	res, _ := fullinfo.Run(newChainStepper(s), r, fullinfo.Defaults())
	return Complex{
		Rounds:     r,
		Vertices:   res.Vertices,
		Edges:      int(res.Configs),
		Components: res.Components,
		Connected:  res.Components <= 1,
	}
}

// ChainReport describes the indistinguishability structure of Γ^r with
// fixed inputs (Lemma III.4 / Corollary III.5).
type ChainReport struct {
	Rounds int
	Words  int
	// IsPath: every view is shared by at most two words, consecutive words
	// (in index order) share exactly one process's view, and non-adjacent
	// words share none.
	IsPath bool
	// BlindProcess[k] records which process cannot distinguish the words
	// of index k and k+1 (true = white), matching Corollary III.5:
	// white exactly when ind is odd.
	BlindProcess []bool
}

// VerifyChainStructure checks exhaustively that the words of Γ^r with
// fixed distinct inputs form a single path in index order under
// one-process indistinguishability.
func VerifyChainStructure(r int) ChainReport {
	rep := ChainReport{Rounds: r, Words: int(omission.Pow3Int64(r)), IsPath: true}
	in := newInterner()
	initW := in.id(-10, -10)
	initB := in.id(-11, -11)
	type views struct{ w, b int }
	byWord := make(map[string]views, rep.Words)
	var walk func(depth, vw, vb int, word omission.Word)
	var words []omission.Word
	walk = func(depth, vw, vb int, word omission.Word) {
		if depth == r {
			byWord[word.String()] = views{vw, vb}
			words = append(words, word.Clone())
			return
		}
		for _, a := range omission.Gamma {
			rw, rb := vb, vw
			if a.LostBlack() {
				rw = -1
			}
			if a.LostWhite() {
				rb = -1
			}
			walk(depth+1, in.id(vw, rw), in.id(vb, rb), append(word, a))
		}
	}
	walk(0, initW, initB, nil)

	// Count view sharing.
	shareW := map[int][]int{} // white view id -> indices (by ind)
	shareB := map[int][]int{}
	ordered := make([]views, rep.Words)
	for _, w := range words {
		k, err := omission.IndexInt64(w)
		if err != nil {
			panic(err)
		}
		v := byWord[w.String()]
		ordered[k] = v
		shareW[v.w] = append(shareW[v.w], int(k))
		shareB[v.b] = append(shareB[v.b], int(k))
	}
	adjacentPair := func(ks []int) bool {
		return len(ks) == 1 || (len(ks) == 2 && absInt(ks[0]-ks[1]) == 1)
	}
	for _, ks := range shareW {
		if !adjacentPair(ks) {
			rep.IsPath = false
		}
	}
	for _, ks := range shareB {
		if !adjacentPair(ks) {
			rep.IsPath = false
		}
	}
	rep.BlindProcess = make([]bool, 0, rep.Words-1)
	for k := 0; k+1 < rep.Words; k++ {
		whiteBlind := ordered[k].w == ordered[k+1].w
		blackBlind := ordered[k].b == ordered[k+1].b
		if whiteBlind == blackBlind { // exactly one must hold
			rep.IsPath = false
		}
		rep.BlindProcess = append(rep.BlindProcess, whiteBlind)
	}
	return rep
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
