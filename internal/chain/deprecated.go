// Deprecated wrappers over the unified Analyze entry point. They keep
// the pre-refactor call shapes alive for the root facade and any
// out-of-tree users; new code (and everything under internal/ and cmd/,
// enforced by verify.sh) calls Analyze(ctx, Request) directly.
package chain

import (
	"context"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// mustReport runs Analyze under a background context and panics on
// error, matching the fail-loud behavior of the old non-ctx API.
func mustReport(req Request) Report {
	rep, err := Analyze(context.Background(), req)
	if err != nil {
		panic(err.Error())
	}
	return rep
}

// AnalyzeOpt computes the r-round solvability analysis with explicit
// engine options.
//
// Deprecated: use Analyze with Request.Engine.
func AnalyzeOpt(s *scheme.Scheme, r int, opt fullinfo.Options) Analysis {
	return mustReport(Request{Scheme: s, Horizon: r, Engine: &opt}).Analysis
}

// AnalyzeSequential computes the r-round analysis with the
// single-threaded materialize-then-union reference algorithm.
//
// Deprecated: use Analyze with Request.Sequential.
func AnalyzeSequential(s *scheme.Scheme, r int) Analysis {
	return mustReport(Request{Scheme: s, Horizon: r, Sequential: true}).Analysis
}

// SolvableInRounds reports whether an r-round consensus algorithm
// exists for the scheme.
//
// Deprecated: use Analyze with Request.VerdictOnly.
func SolvableInRounds(s *scheme.Scheme, r int) bool {
	return mustReport(Request{Scheme: s, Horizon: r, VerdictOnly: true}).Solvable
}

// AnalyzeChecked is the fixed-horizon analysis under a context.
//
// Deprecated: use Analyze.
func AnalyzeChecked(ctx context.Context, s *scheme.Scheme, r int) (Analysis, error) {
	rep, err := Analyze(ctx, Request{Scheme: s, Horizon: r})
	return rep.Analysis, err
}

// SolvableInRoundsChecked is SolvableInRounds under a context.
//
// Deprecated: use Analyze with Request.VerdictOnly.
func SolvableInRoundsChecked(ctx context.Context, s *scheme.Scheme, r int) (bool, error) {
	rep, err := Analyze(ctx, Request{Scheme: s, Horizon: r, VerdictOnly: true})
	return rep.Solvable, err
}

// MinRoundsSearch returns the smallest r ≤ maxR for which the scheme is
// r-round solvable, or ok=false if none is.
//
// Deprecated: use Analyze with Request.MinRounds.
func MinRoundsSearch(s *scheme.Scheme, maxR int) (int, bool) {
	rep := mustReport(Request{Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true})
	return foundRounds(rep)
}

// MinRoundsSearchChecked is MinRoundsSearch under a context.
//
// Deprecated: use Analyze with Request.MinRounds.
func MinRoundsSearchChecked(ctx context.Context, s *scheme.Scheme, maxR int) (int, bool, error) {
	rep, err := Analyze(ctx, Request{Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true})
	if err != nil {
		return 0, false, err
	}
	r, ok := foundRounds(rep)
	return r, ok, nil
}

// foundRounds reproduces the historical (0, false) not-found shape.
func foundRounds(rep Report) (int, bool) {
	if !rep.Found {
		return 0, false
	}
	return rep.Rounds, true
}
