package chain

import (
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// TestEngineMatchesSequential pins the tentpole guarantee: the parallel
// streaming engine returns an Analysis identical — field for field — to
// the sequential materialize-then-union reference, for every named
// scheme at horizons 1..5, both single-worker and with a real pool
// (which also drives the worker/merge code under -race).
func TestEngineMatchesSequential(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 5; r++ {
			want := AnalyzeSequential(s, r)
			for _, workers := range []int{1, 4} {
				got := AnalyzeOpt(s, r, fullinfo.Options{Parallel: true, Workers: workers})
				if got != want {
					t.Errorf("%s r=%d workers=%d: engine %+v != sequential %+v",
						name, r, workers, got, want)
				}
			}
			if got := SolvableInRounds(s, r); got != want.Solvable {
				t.Errorf("%s r=%d: SolvableInRounds=%v, sequential Solvable=%v",
					name, r, got, want.Solvable)
			}
		}
	}
}

// TestEngineForcedSplitDepth exercises frontier splitting at every depth
// of a small instance, including splits past the point where subtrees
// become single leaves.
func TestEngineForcedSplitDepth(t *testing.T) {
	s, err := scheme.ByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	want := AnalyzeSequential(s, r)
	for depth := 1; depth <= r; depth++ {
		got := AnalyzeOpt(s, r, fullinfo.Options{Parallel: true, Workers: 4, SplitDepth: depth})
		if got != want {
			t.Errorf("split depth %d: engine %+v != sequential %+v", depth, got, want)
		}
	}
}

// TestEngineEarlyExitVerdicts: with early exit the counts may be
// partial, but the verdict must still match the reference on both
// solvable and unsolvable instances.
func TestEngineEarlyExitVerdicts(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 4; r++ {
			want := AnalyzeSequential(s, r).Solvable
			opt := fullinfo.Options{Parallel: true, Workers: 4, EarlyExit: true}
			if got := AnalyzeOpt(s, r, opt).Solvable; got != want {
				t.Errorf("%s r=%d: early-exit Solvable=%v want %v", name, r, got, want)
			}
		}
	}
}

// TestProtocolComplexMatchesEnumeration cross-checks the engine-backed
// ProtocolComplex against a direct recount over the legacy enumeration.
func TestProtocolComplexMatchesEnumeration(t *testing.T) {
	for _, name := range []string{"S0", "S1", "R1", "K2"} {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 4; r++ {
			configs := enumerate(s, r)
			type vtx struct{ proc, view int }
			index := map[vtx]int{}
			idOf := func(v vtx) int {
				if id, ok := index[v]; ok {
					return id
				}
				id := len(index)
				index[v] = id
				return id
			}
			var edges [][2]int
			for _, c := range configs {
				edges = append(edges, [2]int{idOf(vtx{0, c.viewW}), idOf(vtx{1, c.viewB})})
			}
			uf := newUnionFind(len(index))
			for _, e := range edges {
				uf.union(e[0], e[1])
			}
			comps := map[int]bool{}
			for i := 0; i < len(index); i++ {
				comps[uf.find(i)] = true
			}
			got := ProtocolComplex(s, r)
			if got.Vertices != len(index) || got.Edges != len(edges) || got.Components != len(comps) {
				t.Errorf("%s r=%d: ProtocolComplex %+v, want V=%d E=%d C=%d",
					name, r, got, len(index), len(edges), len(comps))
			}
		}
	}
}
