package chain

import (
	"context"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// TestEngineMatchesSequential pins the tentpole guarantee: the parallel
// streaming engine returns an Analysis identical — field for field — to
// the sequential materialize-then-union reference, for every named
// scheme at horizons 1..5, both single-worker and with a real pool
// (which also drives the worker/merge code under -race).
func TestEngineMatchesSequential(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 5; r++ {
			want := AnalyzeSequential(s, r)
			for _, workers := range []int{1, 4} {
				got := AnalyzeOpt(s, r, fullinfo.Options{Parallel: true, Workers: workers})
				if got != want {
					t.Errorf("%s r=%d workers=%d: engine %+v != sequential %+v",
						name, r, workers, got, want)
				}
			}
			if got := SolvableInRounds(s, r); got != want.Solvable {
				t.Errorf("%s r=%d: SolvableInRounds=%v, sequential Solvable=%v",
					name, r, got, want.Solvable)
			}
		}
	}
}

// TestIncrementalExtendMatchesRestart pins the incremental engine: one
// Engine extended round by round must report exactly the same Result —
// verdict and component structure — as a from-scratch run at every
// horizon, for every named scheme.
func TestIncrementalExtendMatchesRestart(t *testing.T) {
	ctx := context.Background()
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		eng := fullinfo.NewEngine(newChainStepper(s), fullinfo.Options{})
		for r := 0; r <= 5; r++ {
			got, err := eng.ExtendTo(ctx, r)
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, r, err)
			}
			want, _, err := fullinfo.RunChecked(ctx, newChainStepper(s), r,
				fullinfo.Options{Parallel: true, Workers: 4})
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, r, err)
			}
			if got != want {
				t.Errorf("%s r=%d: incremental %+v != restart %+v", name, r, got, want)
			}
		}
	}
}

// TestAnalyzeMinRoundsMatchesRestartSearch pins the MinRounds mode of
// the unified entry point (incremental under the hood) against the
// naive restart-per-horizon search over the sequential reference.
func TestAnalyzeMinRoundsMatchesRestartSearch(t *testing.T) {
	ctx := context.Background()
	const maxR = 5
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wantR, wantOK := 0, false
		for r := 0; r <= maxR; r++ {
			if analyzeSequential(s, r).Solvable {
				wantR, wantOK = r, true
				break
			}
		}
		rep, err := Analyze(ctx, Request{Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Found != wantOK || (wantOK && rep.Rounds != wantR) {
			t.Errorf("%s: MinRounds found=%v rounds=%d, want found=%v rounds=%d",
				name, rep.Found, rep.Rounds, wantOK, wantR)
		}
		if wantOK {
			// The found horizon's scan never early-exits (no mixed
			// component exists there), so its counts must be exact.
			exact := analyzeSequential(s, rep.Rounds)
			if rep.Analysis != exact {
				t.Errorf("%s: found-horizon analysis %+v != sequential %+v", name, rep.Analysis, exact)
			}
		}
		if rep.Stats.Configs == 0 || rep.Stats.WallNanos == 0 {
			t.Errorf("%s: MinRounds stats not populated: %+v", name, rep.Stats)
		}
	}
}

// TestAnalyzeSequentialModeMatchesEngine drives both modes through the
// one public entry point.
func TestAnalyzeSequentialModeMatchesEngine(t *testing.T) {
	ctx := context.Background()
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 4; r++ {
			seq, err := Analyze(ctx, Request{Scheme: s, Horizon: r, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			eng, err := Analyze(ctx, Request{Scheme: s, Horizon: r})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Analysis != eng.Analysis {
				t.Errorf("%s r=%d: sequential %+v != engine %+v", name, r, seq.Analysis, eng.Analysis)
			}
		}
	}
}

// TestEngineForcedSplitDepth exercises frontier splitting at every depth
// of a small instance, including splits past the point where subtrees
// become single leaves.
func TestEngineForcedSplitDepth(t *testing.T) {
	s, err := scheme.ByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	want := AnalyzeSequential(s, r)
	for depth := 1; depth <= r; depth++ {
		got := AnalyzeOpt(s, r, fullinfo.Options{Parallel: true, Workers: 4, SplitDepth: depth})
		if got != want {
			t.Errorf("split depth %d: engine %+v != sequential %+v", depth, got, want)
		}
	}
}

// TestEngineEarlyExitVerdicts: with early exit the counts may be
// partial, but the verdict must still match the reference on both
// solvable and unsolvable instances.
func TestEngineEarlyExitVerdicts(t *testing.T) {
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 4; r++ {
			want := AnalyzeSequential(s, r).Solvable
			opt := fullinfo.Options{Parallel: true, Workers: 4, EarlyExit: true}
			if got := AnalyzeOpt(s, r, opt).Solvable; got != want {
				t.Errorf("%s r=%d: early-exit Solvable=%v want %v", name, r, got, want)
			}
		}
	}
}

// TestProtocolComplexMatchesEnumeration cross-checks the engine-backed
// ProtocolComplex against a direct recount over the legacy enumeration.
func TestProtocolComplexMatchesEnumeration(t *testing.T) {
	for _, name := range []string{"S0", "S1", "R1", "K2"} {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 4; r++ {
			configs := enumerate(s, r)
			type vtx struct{ proc, view int }
			index := map[vtx]int{}
			idOf := func(v vtx) int {
				if id, ok := index[v]; ok {
					return id
				}
				id := len(index)
				index[v] = id
				return id
			}
			var edges [][2]int
			for _, c := range configs {
				edges = append(edges, [2]int{idOf(vtx{0, c.viewW}), idOf(vtx{1, c.viewB})})
			}
			uf := newUnionFind(len(index))
			for _, e := range edges {
				uf.union(e[0], e[1])
			}
			comps := map[int]bool{}
			for i := 0; i < len(index); i++ {
				comps[uf.find(i)] = true
			}
			got := ProtocolComplex(s, r)
			if got.Vertices != len(index) || got.Edges != len(edges) || got.Components != len(comps) {
				t.Errorf("%s r=%d: ProtocolComplex %+v, want V=%d E=%d C=%d",
					name, r, got, len(index), len(edges), len(comps))
			}
		}
	}
}
