package chain

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// bench6MaxR is the horizon BENCH_6 drives the symbolic backend to;
// override with BENCH6_MAXR. 40 is past every enumeration budget —
// 4·3^40 ≈ 4.9e19 configurations, beyond int64 — yet the interval walk
// finishes the whole MinRounds sweep in microseconds per horizon.
func bench6MaxR() int {
	if v := os.Getenv("BENCH6_MAXR"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return 40
}

// bench6PrintOnce keeps the configs-exact line to a single clean write
// before the harness starts interleaving benchmark name prefixes with
// benchmark-body output.
var bench6PrintOnce sync.Once

// BenchmarkMinRoundsSymbolicVsFlat is the BENCH_6 pair: the R1
// MinRounds/VerdictOnly search on the symbolic index-interval backend
// at bench6MaxR (default 40), against the PR-6 flat-table enumerating
// engine at the BENCH_5 horizon (bench5MaxR, default 13 — the deepest
// it can afford). The comparison is deliberately asymmetric: the
// symbolic side sweeps three times the horizon, which enumeration
// cannot reach at any budget, and must still win on wall clock. It
// also prints the exact configuration count at the top horizon
// (bench6_configs_exact), which exceeds int64.
func BenchmarkMinRoundsSymbolicVsFlat(b *testing.B) {
	s, err := scheme.ByName("R1")
	if err != nil {
		b.Fatal(err)
	}
	maxR := bench6MaxR()
	bench6PrintOnce.Do(func() {
		rep, err := Analyze(context.Background(), Request{
			Scheme: s, Horizon: maxR,
			Engine: &fullinfo.Options{Backend: fullinfo.BackendSymbolic},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.ConfigsExact != nil {
			fmt.Printf("bench6_configs_exact %s\n", rep.ConfigsExact)
		} else {
			fmt.Printf("bench6_configs_exact %d\n", rep.Configs)
		}
	})
	b.Run("symbolic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true,
				Engine: &fullinfo.Options{Backend: fullinfo.BackendSymbolic},
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Found {
				b.Fatal("R1 must be unsolvable")
			}
			if rep.Stats.SymbolicFallbacks != 0 {
				b.Fatal("R1 must stay symbolic for the whole sweep")
			}
		}
		b.ReportMetric(float64(maxR), "max_horizon")
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		flatR := bench5MaxR()
		for i := 0; i < b.N; i++ {
			rep, err := Analyze(context.Background(), Request{
				Scheme: s, Horizon: flatR, MinRounds: true, VerdictOnly: true,
				Engine: &fullinfo.Options{Backend: fullinfo.BackendEnumerate, Parallel: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Found {
				b.Fatal("R1 must be unsolvable")
			}
		}
		b.ReportMetric(float64(flatR), "max_horizon")
	})
}
