package chain

import (
	"testing"

	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestSynthesizeOnBoundedSchemes compiles algorithms for every scheme
// with a finite round bound and validates them exhaustively at that bound.
func TestSynthesizeOnBoundedSchemes(t *testing.T) {
	cases := []struct {
		s *scheme.Scheme
		p int
	}{
		{scheme.S0(), 1},
		{scheme.TWhite(), 1},
		{scheme.TBlack(), 1},
		{scheme.C1(), 2},
		{scheme.S1(), 2},
		{scheme.AtMostKLosses(0), 1},
		{scheme.AtMostKLosses(1), 2},
		{scheme.AtMostKLosses(2), 3},
		{scheme.BlackoutBudget(0), 1},
		{scheme.BlackoutBudget(1), 2},
		{scheme.BlackoutBudget(2), 3},
		{scheme.SigmaAtMostKLostMessages(1), 2},
	}
	for _, c := range cases {
		// Not solvable any earlier.
		if _, _, ok := Synthesize(c.s, c.p-1); ok {
			t.Fatalf("%s: synthesized below the bound p=%d", c.s.Name(), c.p)
		}
		white, black, ok := Synthesize(c.s, c.p)
		if !ok {
			t.Fatalf("%s: synthesis failed at p=%d", c.s.Name(), c.p)
		}
		for _, prefix := range c.s.AllPrefixes(c.p) {
			sc, ok := c.s.ExtendToScenario(prefix)
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				// Fresh processes each run (Init resets, but be explicit
				// about sharing the compiled program).
				tr := sim.RunScenario(white, black, inputs, sc, c.p+2)
				rep := sim.Check(tr)
				if !rep.OK() {
					t.Fatalf("%s under %s inputs %v: %v (%s)", c.s.Name(), sc, inputs, rep.Violations, tr)
				}
				if tr.Rounds != c.p {
					t.Fatalf("%s: synthesized algorithm decided at %d, want exactly %d", c.s.Name(), tr.Rounds, c.p)
				}
			}
		}
	}
}

// TestSynthesizeRefusesObstructions: no program exists for Γ^ω or Σ^ω at
// any horizon.
func TestSynthesizeRefusesObstructions(t *testing.T) {
	for r := 0; r <= 4; r++ {
		if _, _, ok := Synthesize(scheme.R1(), r); ok {
			t.Fatalf("synthesized an algorithm for Γ^ω at r=%d", r)
		}
		if _, _, ok := Synthesize(scheme.S2(), r); ok {
			t.Fatalf("synthesized an algorithm for Σ^ω at r=%d", r)
		}
	}
}

// TestSynthesizedOffScheme: under a scenario outside the scheme the
// synthesized process stays undecided rather than deciding wrongly.
func TestSynthesizedOffScheme(t *testing.T) {
	white, black, ok := Synthesize(scheme.S0(), 1)
	if !ok {
		t.Fatal("synthesis failed")
	}
	// S0 promises no losses; play a loss.
	tr := sim.RunScenario(white, black, [2]sim.Value{0, 1}, omission.Constant(omission.LossWhite), 3)
	if !tr.TimedOut {
		t.Fatalf("off-scheme run must not decide: %s", tr)
	}
}

// TestSynthesizedMatchesBoundedAWRounds: on the Γ-schemes both the
// synthesized program and the bounded A_w decide by the same optimal
// round p (decisions themselves may differ; both satisfy consensus).
func TestSynthesizedMatchesBoundedAWRounds(t *testing.T) {
	s := scheme.S1()
	const p = 2
	white, black, ok := Synthesize(s, p)
	if !ok {
		t.Fatal("synthesis failed")
	}
	worst := 0
	for _, prefix := range s.AllPrefixes(p) {
		sc, ok := s.ExtendToScenario(prefix)
		if !ok {
			continue
		}
		for _, inputs := range sim.AllInputs() {
			tr := sim.RunScenario(white, black, inputs, sc, p+2)
			if tr.Rounds > worst {
				worst = tr.Rounds
			}
		}
	}
	if worst != p {
		t.Fatalf("synthesized worst round %d, want %d", worst, p)
	}
}
