package chain

import (
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// AnalyzeLynch decides r-round solvability for the *weak-validity*
// variant of the Coordinated Attack Problem used in Lynch's textbook
// treatment (the paper's Related Works notes that [Lyn96] proves the
// impossibility for this weaker problem):
//
//	Agreement: both processes decide the same value.
//	Validity:  (a) if both inputs are 0, the decision is 0;
//	           (b) if both inputs are 1 AND no message is lost, the
//	               decision is 1.
//
// Weakening validity does not help: the all-deliveries configuration with
// inputs (1,1) is chained to a unanimous-0 configuration through the
// indistinguishability path, so Γ^ω remains unsolvable at every horizon —
// Lynch's impossibility, derived from the same analysis.
func AnalyzeLynch(s *scheme.Scheme, r int) Analysis {
	configs := enumerate(s, r)
	uf := newUnionFind(len(configs))
	byViewW := map[int]int{}
	byViewB := map[int]int{}
	for i, c := range configs {
		if j, ok := byViewW[c.viewW]; ok {
			uf.union(i, j)
		} else {
			byViewW[c.viewW] = i
		}
		if j, ok := byViewB[c.viewB]; ok {
			uf.union(i, j)
		} else {
			byViewB[c.viewB] = i
		}
	}
	noLoss := omission.Uniform(omission.None, r)
	type compInfo struct {
		mustZero bool // contains a unanimous-0 configuration
		mustOne  bool // contains the (no losses, inputs (1,1)) configuration
	}
	comps := map[int]*compInfo{}
	for i, c := range configs {
		root := uf.find(i)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		if c.inputs == [2]sim.Value{0, 0} {
			ci.mustZero = true
		}
		if c.inputs == [2]sim.Value{1, 1} && c.word.Equal(noLoss) {
			ci.mustOne = true
		}
	}
	an := Analysis{Rounds: r, Configs: len(configs), Components: len(comps)}
	for _, ci := range comps {
		if ci.mustZero && ci.mustOne {
			an.MixedComponents++
		}
	}
	an.Solvable = an.MixedComponents == 0
	return an
}

// SolvableLynchInRounds reports r-round solvability of the weak-validity
// problem.
func SolvableLynchInRounds(s *scheme.Scheme, r int) bool { return AnalyzeLynch(s, r).Solvable }
