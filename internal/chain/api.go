package chain

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// Request selects one bounded-round solvability computation. The zero
// value (plus a Scheme) asks for an exhaustive analysis at horizon 0.
type Request struct {
	// Scheme is the omission scheme under analysis. Required.
	Scheme *scheme.Scheme
	// Horizon is the round horizon r — or, when MinRounds is set, the
	// largest horizon the search will try.
	Horizon int
	// MinRounds searches for the smallest r ≤ Horizon at which the
	// scheme is solvable instead of analyzing one fixed horizon. The
	// search runs on the incremental engine: horizon r+1 extends the
	// horizon-r frontier rather than rebuilding the tree.
	MinRounds bool
	// VerdictOnly declares that only Report.Solvable (and Found) are
	// needed, letting the engine abandon a horizon on the first mixed
	// component. Counts in the Report may then be partial.
	VerdictOnly bool
	// Sequential routes the computation through the materializing
	// single-threaded reference walk instead of the streaming engine.
	// It exists for differential testing.
	Sequential bool
	// Engine optionally tunes the streaming engine; nil means
	// fullinfo.Defaults(). EarlyExit and Observer are managed by
	// Analyze (derived from VerdictOnly and Observer).
	Engine *fullinfo.Options
	// Observer, when non-nil, receives one fullinfo.Stats snapshot per
	// engine run (fixed horizon) or per round (MinRounds search).
	Observer func(fullinfo.Stats)
}

// Report is the outcome of Analyze. For MinRounds requests, Analysis
// describes the found horizon when Found, or the failed top horizon
// otherwise. Stats aggregates the engine work across every round the
// request touched.
type Report struct {
	Analysis
	// Found reports whether a MinRounds search succeeded within the
	// horizon cap. Fixed-horizon requests set it to Solvable.
	Found bool
	// Stats is the aggregated instrumentation for the whole request.
	Stats fullinfo.Stats
}

// errNilScheme is returned for requests missing a scheme.
var errNilScheme = errors.New("chain: Analyze requires a Scheme")

// Analyze is the single analysis entry point of the package: every
// other exported analysis function is a deprecated wrapper around it.
// The context bounds the whole computation — deadlines propagate into
// the engine's worker pool or the incremental per-round walk.
func Analyze(ctx context.Context, req Request) (Report, error) {
	if req.Scheme == nil {
		return Report{}, errNilScheme
	}
	if req.Horizon < 0 {
		req.Horizon = 0
	}
	var agg fullinfo.Stats
	observe := func(s fullinfo.Stats) {
		agg.Merge(s)
		if req.Observer != nil {
			req.Observer(s)
		}
	}
	if req.Sequential {
		return analyzeSequentialReq(ctx, req, &agg, observe)
	}
	opt := fullinfo.Defaults()
	if req.Engine != nil {
		opt = *req.Engine
	}
	opt.EarlyExit = req.VerdictOnly
	opt.Observer = observe

	if !req.MinRounds {
		res, _, err := fullinfo.RunChecked(ctx, newChainStepper(req.Scheme), req.Horizon, opt)
		if err != nil {
			return Report{}, err
		}
		return Report{Analysis: analysisOf(req.Horizon, res), Found: res.Solvable, Stats: agg}, nil
	}

	eng := fullinfo.NewEngine(newChainStepper(req.Scheme), opt)
	defer eng.Release()
	var last fullinfo.Result
	for r := 0; r <= req.Horizon; r++ {
		res, err := eng.ExtendTo(ctx, r)
		if err != nil {
			return Report{}, err
		}
		if res.Solvable {
			return Report{Analysis: analysisOf(r, res), Found: true, Stats: agg}, nil
		}
		last = res
	}
	return Report{Analysis: analysisOf(req.Horizon, last), Stats: agg}, nil
}

// analysisOf converts an engine result at horizon r. Configs saturates
// at math.MaxInt; when the engine reports an exact big count (symbolic
// horizons past int64), it is carried through ConfigsExact.
func analysisOf(r int, res fullinfo.Result) Analysis {
	configs := int(math.MaxInt)
	if res.Configs <= math.MaxInt {
		configs = int(res.Configs)
	}
	return Analysis{
		Rounds:          r,
		Configs:         configs,
		Components:      res.Components,
		Solvable:        res.Solvable,
		MixedComponents: res.MixedComponents,
		ConfigsExact:    res.ConfigsExact,
	}
}

// analyzeSequentialReq serves Request.Sequential: the same Request
// surface, answered by the materializing reference walk. MinRounds
// restarts the walk per horizon — the reference path stays the simple,
// obviously-correct one.
func analyzeSequentialReq(ctx context.Context, req Request, agg *fullinfo.Stats, observe func(fullinfo.Stats)) (Report, error) {
	runOne := func(r int) (Analysis, error) {
		if err := ctx.Err(); err != nil {
			return Analysis{}, err
		}
		start := time.Now()
		an := analyzeSequential(req.Scheme, r)
		observe(fullinfo.Stats{
			Horizon:         r,
			Rounds:          r,
			Configs:         int64(an.Configs),
			Components:      an.Components,
			MixedComponents: an.MixedComponents,
			Workers:         1,
			WallNanos:       time.Since(start).Nanoseconds(),
		})
		return an, nil
	}
	if !req.MinRounds {
		an, err := runOne(req.Horizon)
		if err != nil {
			return Report{}, err
		}
		return Report{Analysis: an, Found: an.Solvable, Stats: *agg}, nil
	}
	var last Analysis
	for r := 0; r <= req.Horizon; r++ {
		an, err := runOne(r)
		if err != nil {
			return Report{}, err
		}
		if an.Solvable {
			return Report{Analysis: an, Found: true, Stats: *agg}, nil
		}
		last = an
	}
	return Report{Analysis: last, Stats: *agg}, nil
}
