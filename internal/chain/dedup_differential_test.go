package chain

import (
	"context"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/scheme"
)

// TestDedupDifferential pins the PR-5 guarantee across every engine
// configuration: for all named schemes and horizons, the hash-consed
// incremental engine — sequential and parallel, dedup forced on and
// forced off — reports exactly the same (Solvable, Vertices,
// Components, MixedComponents, Configs) as the non-dedup from-scratch
// reference and the materializing sequential walk.
func TestDedupDifferential(t *testing.T) {
	ctx := context.Background()
	engines := []struct {
		name string
		opt  fullinfo.Options
	}{
		{"dedup-seq", fullinfo.Options{Dedup: fullinfo.DedupOn}},
		{"dedup-par", fullinfo.Options{Dedup: fullinfo.DedupOn, Parallel: true, Workers: 4}},
		{"nodedup-seq", fullinfo.Options{Dedup: fullinfo.DedupOff}},
	}
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		engs := make([]*fullinfo.Engine, len(engines))
		for i, e := range engines {
			engs[i] = fullinfo.NewEngine(newChainStepper(s), e.opt)
		}
		for r := 0; r <= 5; r++ {
			want, _, err := fullinfo.RunChecked(ctx, newChainStepper(s), r,
				fullinfo.Options{Dedup: fullinfo.DedupOff})
			if err != nil {
				t.Fatal(err)
			}
			seq := AnalyzeSequential(s, r)
			if seq.Solvable != want.Solvable || seq.Components != want.Components ||
				seq.MixedComponents != want.MixedComponents || int64(seq.Configs) != want.Configs {
				t.Fatalf("%s r=%d: sequential %+v != reference run %+v", name, r, seq, want)
			}
			for i, e := range engines {
				got, err := engs[i].ExtendTo(ctx, r)
				if err != nil {
					t.Fatalf("%s r=%d %s: %v", name, r, e.name, err)
				}
				if got != want {
					t.Errorf("%s r=%d %s: %+v != reference %+v", name, r, e.name, got, want)
				}
			}
		}
	}
}

// TestAnalyzeHonorsEngineDedupOptions drives the dedup-parallel engine
// through the public Analyze surface (Request.Engine) and checks the
// Analysis and the reported dedup instrumentation.
func TestAnalyzeHonorsEngineDedupOptions(t *testing.T) {
	ctx := context.Background()
	for _, name := range scheme.Names() {
		s, err := scheme.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const r = 4
		want := AnalyzeSequential(s, r)
		rep, err := Analyze(ctx, Request{
			Scheme:  s,
			Horizon: r,
			// BackendEnumerate: this test exercises the enumerating
			// engine's dedup path specifically; the default Auto backend
			// would answer symbolically and never touch the frontier.
			Engine: &fullinfo.Options{Backend: fullinfo.BackendEnumerate, Dedup: fullinfo.DedupOn, Parallel: true, Workers: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Analysis != want {
			t.Errorf("%s: dedup-parallel Analyze %+v != sequential %+v", name, rep.Analysis, want)
		}
		// Chain views are history-injective, so forced dedup must report
		// a clean frontier: raw == distinct > 0, ratio exactly 1.
		if rep.Stats.FrontierRaw == 0 || rep.Stats.FrontierRaw != rep.Stats.FrontierDistinct {
			t.Errorf("%s: frontier counters raw=%d distinct=%d, want equal and nonzero",
				name, rep.Stats.FrontierRaw, rep.Stats.FrontierDistinct)
		}
		if rep.Stats.DedupRatio() != 1 {
			t.Errorf("%s: dedup ratio %v, want 1 (injective views)", name, rep.Stats.DedupRatio())
		}
	}
}
