package chain

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// analyzeAt runs the unified entry point at one fixed horizon.
func analyzeAt(t *testing.T, s *scheme.Scheme, r int) Analysis {
	t.Helper()
	rep, err := Analyze(context.Background(), Request{Scheme: s, Horizon: r})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Analysis
}

// TestChainStructure verifies Lemma III.4 / Corollary III.5 semantically:
// for every r the 3^r words of Γ^r form a single indistinguishability path
// in index order, and the blind process alternates with the index parity
// (black blind at even ind, white at odd).
func TestChainStructure(t *testing.T) {
	for r := 1; r <= 7; r++ {
		rep := VerifyChainStructure(r)
		if !rep.IsPath {
			t.Fatalf("r=%d: Γ^r is not an index-ordered path", r)
		}
		if rep.Words != int(omission.Pow3Int64(r)) {
			t.Fatalf("r=%d: %d words", r, rep.Words)
		}
		for k, whiteBlind := range rep.BlindProcess {
			if whiteBlind != (k%2 == 1) {
				t.Fatalf("r=%d k=%d: blind process %v, want white iff ind odd", r, k, whiteBlind)
			}
			// Agrees with the omission package's predicate.
			if whiteBlind != omission.IndistinguishableTo(omission.UnIndexInt64(r, int64(k))) {
				t.Fatalf("r=%d k=%d: disagrees with IndistinguishableTo", r, k)
			}
		}
	}
}

// TestGammaOmegaUnsolvableAllHorizons is the operational impossibility of
// the Coordinated Attack Problem for Γ^ω: no r-round algorithm exists for
// any r (the full configuration graph always connects unanimous-0 to
// unanimous-1).
func TestGammaOmegaUnsolvableAllHorizons(t *testing.T) {
	r1 := scheme.R1()
	for r := 0; r <= 6; r++ {
		an := analyzeAt(t, r1, r)
		if an.Solvable {
			t.Fatalf("Γ^ω solvable at horizon %d?!", r)
		}
		if an.MixedComponents == 0 {
			t.Fatalf("r=%d: expected a mixed component", r)
		}
		wantConfigs := 4 * int(omission.Pow3Int64(r))
		if an.Configs != wantConfigs {
			t.Fatalf("r=%d: %d configs, want %d", r, an.Configs, wantConfigs)
		}
	}
}

// TestNamedSchemesBoundedSolvability pins the horizon at which each
// environment becomes bounded-round solvable, matching Corollary III.14 /
// Proposition III.15 exactly.
func TestNamedSchemesBoundedSolvability(t *testing.T) {
	cases := []struct {
		s *scheme.Scheme
		p int // first solvable horizon; -1 = none ≤ 5
	}{
		{scheme.S0(), 1},
		{scheme.TWhite(), 1},
		{scheme.TBlack(), 1},
		{scheme.C1(), 2},
		{scheme.S1(), 2},
		{scheme.R1(), -1},
		{scheme.Fair(), -1},       // solvable, but not in bounded rounds
		{scheme.AlmostFair(), -1}, // likewise
	}
	for _, c := range cases {
		got, ok := MinRoundsSearch(c.s, 5)
		if c.p < 0 {
			if ok {
				t.Errorf("%s: unexpectedly solvable at horizon %d", c.s.Name(), got)
			}
			continue
		}
		if !ok || got != c.p {
			t.Errorf("%s: first solvable horizon = %d (ok=%v), want %d", c.s.Name(), got, ok, c.p)
		}
		// Solvability is monotone in the horizon.
		for r := c.p; r <= c.p+2; r++ {
			if !SolvableInRounds(c.s, r) {
				t.Errorf("%s: solvable at %d but not at %d", c.s.Name(), c.p, r)
			}
		}
	}
}

// TestCrossValidationWithClassifier is the THM-III8 experiment: on random
// ω-regular schemes, the automata-theoretic classifier and the exhaustive
// chain analysis must agree:
//
//	r-round solvable  ⟺  solvable ∧ MinRounds ≤ r (MinRounds finite).
func TestCrossValidationWithClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const maxR = 4
	for trial := 0; trial < 50; trial++ {
		s := scheme.Random(rng, 1+rng.Intn(4))
		res, err := classify.Classify(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for r := 0; r <= maxR; r++ {
			want := res.Solvable && res.MinRounds != classify.Unbounded && res.MinRounds <= r
			got := SolvableInRounds(s, r)
			if got != want {
				t.Fatalf("%s at horizon %d: chain=%v classifier=%v (solvable=%v minRounds=%d)",
					s.Name(), r, got, want, res.Solvable, res.MinRounds)
			}
		}
	}
}

// TestPairRemovalHorizons: removing a special pair from Γ^ω yields a
// solvable scheme — but never a bounded-round one (its prefix language is
// still all of Γ*).
func TestPairRemovalHorizons(t *testing.T) {
	l := scheme.Minus("R1-pair", scheme.R1(),
		omission.MustScenario("w(b)"), omission.MustScenario(".(b)"))
	for r := 0; r <= 5; r++ {
		if SolvableInRounds(l, r) {
			t.Fatalf("pair-removed scheme bounded-solvable at %d", r)
		}
	}
	res, err := classify.Classify(l)
	if err != nil || !res.Solvable || res.MinRounds != classify.Unbounded {
		t.Fatalf("pair-removed scheme: %+v, %v", res, err)
	}
}

func TestAnalyzeEmptyScheme(t *testing.T) {
	s := scheme.Minus("tiny", scheme.S0(), omission.MustScenario("(.)"))
	// S0 minus its only member is empty: vacuously solvable at every
	// horizon (no configurations at all).
	an := analyzeAt(t, s, 2)
	if !an.Solvable || an.Configs != 0 {
		t.Errorf("empty scheme analysis: %+v", an)
	}
}

func TestAnalysisComponentCounts(t *testing.T) {
	// S0 at horizon 1: configurations are ('.', inputs) for 4 inputs.
	// White's view contains black's input and vice versa: all views are
	// distinct, so 4 singleton components, none mixed.
	an := analyzeAt(t, scheme.S0(), 1)
	if an.Configs != 4 || an.Components != 4 || !an.Solvable {
		t.Errorf("S0 horizon 1: %+v", an)
	}
	// Horizon 0: nobody knows anything: the 4 configurations collapse into
	// one component via shared initial views.
	an = analyzeAt(t, scheme.S0(), 0)
	if an.Solvable || an.Components != 1 {
		t.Errorf("S0 horizon 0: %+v", an)
	}
}

// TestProtocolComplex ties the analysis to the topological picture of the
// paper's conclusion: for Γ^ω the complex is a single connected component
// at every horizon (hence unsolvable); for S1 at its solvable horizon the
// complex splits.
func TestProtocolComplex(t *testing.T) {
	for r := 0; r <= 5; r++ {
		c := ProtocolComplex(scheme.R1(), r)
		if !c.Connected {
			t.Fatalf("Γ^ω complex disconnected at r=%d: %+v", r, c)
		}
		// Edges = configurations = 4·3^r; vertices = distinct local views.
		if c.Edges != 4*int(omission.Pow3Int64(r)) {
			t.Fatalf("r=%d: %d edges", r, c.Edges)
		}
	}
	// S1 at horizon 2 is solvable, so the complex has a component
	// structure separating unanimous inputs — in particular > 1 component.
	c := ProtocolComplex(scheme.S1(), 2)
	if c.Connected {
		t.Fatalf("S1 complex connected at its solvable horizon: %+v", c)
	}
	// At horizon 0 everything collapses to a path connecting all inputs.
	c = ProtocolComplex(scheme.S1(), 0)
	if !c.Connected || c.Vertices != 4 || c.Edges != 4 {
		t.Fatalf("horizon-0 complex: %+v", c)
	}
}

// TestLynchWeakValidity reproduces the textbook ([Lyn96]) impossibility
// the paper's Related Works contrasts with: even under the weaker
// validity (unanimous 0 ⇒ 0; unanimous 1 AND no losses ⇒ 1), the
// Coordinated Attack Problem stays unsolvable on Γ^ω at every horizon —
// while genuinely easier than uniform validity on schemes where the
// difference matters.
func TestLynchWeakValidity(t *testing.T) {
	for r := 0; r <= 5; r++ {
		if SolvableLynchInRounds(scheme.R1(), r) {
			t.Fatalf("weak-validity consensus solvable on Γ^ω at r=%d", r)
		}
	}
	// Weak validity is implied by strong validity: wherever the strong
	// problem is solvable, the weak one is too.
	for _, s := range []*scheme.Scheme{scheme.S0(), scheme.S1(), scheme.C1()} {
		strong, _ := MinRoundsSearch(s, 4)
		if !SolvableLynchInRounds(s, strong) {
			t.Fatalf("%s: weak validity harder than strong?!", s.Name())
		}
	}
	// And strictly easier on a witness scheme: under TW ('w' losses only),
	// weak validity is solvable in 0 rounds?? No — agreement still needs a
	// round. Check it becomes solvable no later than the strong variant
	// and strictly earlier somewhere: C1 strong p=2; weak:
	weakP := -1
	for r := 0; r <= 3; r++ {
		if SolvableLynchInRounds(scheme.C1(), r) {
			weakP = r
			break
		}
	}
	strongP, _ := MinRoundsSearch(scheme.C1(), 4)
	if weakP < 0 || weakP > strongP {
		t.Fatalf("C1: weak p=%d vs strong p=%d", weakP, strongP)
	}
	t.Logf("C1: weak-validity first horizon %d, strong %d", weakP, strongP)
}
