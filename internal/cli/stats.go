package cli

import (
	"fmt"
	"time"

	coordattack "repro"
)

// formatEngineStats renders the engine instrumentation of an analysis as
// one -stats output line, shared by every CLI that runs the fullinfo
// engine.
func formatEngineStats(st coordattack.EngineStats) string {
	return fmt.Sprintf("rounds=%d configs=%d vertices=%d components=%d mixed=%d views=%d merges=%d workers=%d frontier=%d/%d dedup=%.3f wall=%s",
		st.Rounds, st.Configs, st.Vertices, st.Components, st.MixedComponents,
		st.ViewsInterned, st.Merges, st.Workers,
		st.FrontierRaw, st.FrontierDistinct, st.DedupRatio(),
		time.Duration(st.WallNanos).Round(time.Microsecond))
}
