package cli

import (
	"fmt"
	"time"

	coordattack "repro"
)

// engineOptions turns a -backend flag value into engine options for an
// analysis request, shared by every CLI that runs the fullinfo engine.
// The empty string and "auto" keep the engine's own selection.
func engineOptions(backend string) (*coordattack.EngineOptions, error) {
	bm, err := coordattack.ParseEngineBackend(backend)
	if err != nil {
		return nil, err
	}
	eng := coordattack.EngineDefaults()
	eng.Backend = bm
	return &eng, nil
}

// formatEngineStats renders the engine instrumentation of an analysis as
// one -stats output line, shared by every CLI that runs the fullinfo
// engine.
func formatEngineStats(st coordattack.EngineStats) string {
	s := fmt.Sprintf("rounds=%d configs=%d vertices=%d components=%d mixed=%d views=%d merges=%d workers=%d frontier=%d/%d dedup=%.3f",
		st.Rounds, st.Configs, st.Vertices, st.Components, st.MixedComponents,
		st.ViewsInterned, st.Merges, st.Workers,
		st.FrontierRaw, st.FrontierDistinct, st.DedupRatio())
	if st.SymbolicRounds > 0 || st.SymbolicFallbacks > 0 {
		s += fmt.Sprintf(" sym=%d intervals=%d/%d peak=%d frag=%.3f fallbacks=%d",
			st.SymbolicRounds, st.Intervals, st.IntervalRuns, st.IntervalsPeak,
			st.FragmentationRatio(), st.SymbolicFallbacks)
	}
	return s + fmt.Sprintf(" wall=%s", time.Duration(st.WallNanos).Round(time.Microsecond))
}
