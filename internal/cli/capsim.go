package cli

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strings"

	coordattack "repro"
	"repro/internal/consensus"
	"repro/internal/sim"
)

// Capsim runs a two-process Coordinated Attack simulation.
func Capsim(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("scheme", "AlmostFair", "named scheme")
	scenarioStr := fs.String("scenario", "", "scenario 'u(v)' to run under (must belong to the scheme)")
	inputsStr := fs.String("inputs", "0,1", "initial values 'w,b'")
	sample := fs.Int("sample", 0, "instead of -scenario: run this many sampled member scenarios")
	seed := fs.Int64("seed", 1, "sampling seed")
	maxRounds := fs.Int("max-rounds", 200, "round cap")
	concurrent := fs.Bool("concurrent", false, "use the goroutine/CSP runner")
	verbose := fs.Bool("verbose", false, "print per-round A_w internals (indices, witness index)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s, err := coordattack.SchemeByName(*name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	v, err := coordattack.Classify(s)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "scheme %s: solvable=%v witness=%s rounds=%s\n",
		s.Name(), v.Solvable, witnessStr(v), roundsStr(v))
	if !v.Solvable {
		fmt.Fprintln(stdout, "obstruction: no algorithm exists; nothing to run")
		return 1
	}

	var inputs [2]coordattack.Value
	if _, err := fmt.Sscanf(strings.ReplaceAll(*inputsStr, ",", " "), "%d %d", &inputs[0], &inputs[1]); err != nil {
		fmt.Fprintf(stderr, "bad -inputs %q: %v\n", *inputsStr, err)
		return 1
	}

	var scenarios []coordattack.Scenario
	if *scenarioStr != "" {
		sc, err := coordattack.ParseScenario(*scenarioStr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if !s.Contains(sc) {
			fmt.Fprintf(stderr, "warning: %s is not a member of %s — the run may not terminate\n", sc, s.Name())
		}
		scenarios = append(scenarios, sc)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		n := *sample
		if n <= 0 {
			n = 3
		}
		for i := 0; i < n; i++ {
			sc, ok := s.SampleScenario(rng, rng.Intn(8))
			if !ok {
				fmt.Fprintln(stderr, "sampling failed: empty scheme")
				return 1
			}
			scenarios = append(scenarios, sc)
		}
	}

	for _, sc := range scenarios {
		var tr coordattack.Trace
		if *verbose && v.HasWitness {
			var infos []consensus.RoundInfo
			tr, infos = consensus.TraceAW(v.Witness, [2]sim.Value{inputs[0], inputs[1]}, sc, *maxRounds)
			fmt.Fprintf(stdout, "\nscenario %s (witness %s)\n", sc, v.Witness)
			for _, ri := range infos {
				fmt.Fprintf(stdout, "  %s\n", ri)
			}
		} else {
			white, black, err := coordattack.NewAlgorithm(v)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			run := coordattack.Run
			if *concurrent {
				run = coordattack.RunConcurrent
			}
			tr = run(white, black, inputs, sc, *maxRounds)
			fmt.Fprintf(stdout, "\nscenario %s\n", sc)
		}
		rep := coordattack.Check(tr)
		fmt.Fprintf(stdout, "  %s\n  consensus: %v", tr, rep.OK())
		if !rep.OK() {
			fmt.Fprintf(stdout, " %v", rep.Violations)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func witnessStr(v *coordattack.Verdict) string {
	if !v.HasWitness {
		return "-"
	}
	return v.Witness.String()
}

func roundsStr(v *coordattack.Verdict) string {
	if v.MinRounds == coordattack.Unbounded {
		return "unbounded"
	}
	return fmt.Sprint(v.MinRounds)
}
