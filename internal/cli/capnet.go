package cli

import (
	"flag"
	"fmt"
	"io"
	"math/rand"

	coordattack "repro"
)

// Capnet runs network consensus experiments (Section V).
func Capnet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("graph", "cycle", "cycle|path|complete|grid|hypercube|barbell|theta|wheel|star|petersen|tree|random|custom")
	edges := fs.String("edges", "", `custom edge list for -graph custom, e.g. "0-1,1-2,2-0"`)
	n := fs.Int("n", 6, "vertices (cycle/path/complete/random/wheel/star/tree)")
	w := fs.Int("w", 3, "grid width")
	h := fs.Int("h", 3, "grid height")
	d := fs.Int("d", 3, "hypercube dimension")
	k := fs.Int("k", 4, "barbell clique size")
	bridges := fs.Int("bridges", 1, "barbell bridges / theta paths")
	f := fs.Int("f", 1, "losses per round budget")
	adversary := fs.String("adversary", "random", "random|targeted|cut|none")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the simulation (0 = none)")
	rounds := fs.Int("rounds", 0, "also decide bounded-round solvability exhaustively (over all algorithms) up to this horizon on the engine")
	stats := fs.Bool("stats", false, "with -rounds: print engine instrumentation")
	backend := fs.String("backend", "auto", "with -rounds: analysis backend, auto|symbolic|enumerate (symbolic also raises the directed-edge cap)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *coordattack.Graph
	switch *kind {
	case "cycle":
		g = coordattack.Cycle(*n)
	case "path":
		g = coordattack.PathGraph(*n)
	case "complete":
		g = coordattack.Complete(*n)
	case "grid":
		g = coordattack.Grid(*w, *h)
	case "hypercube":
		g = coordattack.Hypercube(*d)
	case "barbell":
		g = coordattack.Barbell(*k, *bridges)
	case "theta":
		g = coordattack.Theta(*bridges, 3)
	case "wheel":
		g = coordattack.Wheel(*n)
	case "star":
		g = coordattack.Star(*n)
	case "petersen":
		g = coordattack.Petersen()
	case "tree":
		g = coordattack.BinaryTree(*n)
	case "random":
		g = coordattack.RandomGraph(rand.New(rand.NewSource(*seed)), *n, 0.4)
	case "custom":
		var err error
		g, err = coordattack.ParseEdgeList("custom", *edges)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "unknown graph %q\n", *kind)
		return 2
	}
	if !g.Connected() {
		fmt.Fprintln(stderr, "graph is disconnected; consensus is trivially unsolvable")
		return 1
	}

	c := coordattack.EdgeConnectivity(g)
	fmt.Fprintf(stdout, "graph %s: n=%d m=%d deg=%d c(G)=%d κ(G)=%d\n",
		g.Name(), g.N(), g.NumEdges(), g.MinDegree(), c, coordattack.VertexConnectivity(g))
	fmt.Fprintf(stdout, "Theorem V.1: consensus with f=%d losses/round solvable: %v (f < c(G): %v)\n",
		*f, coordattack.NetworkSolvable(g, *f), *f < c)

	cut, _ := coordattack.MinCut(g)
	fmt.Fprintf(stdout, "minimum cut: %v | sides %v / %v\n", cut.CutEdges, cut.SideA, cut.SideB)

	// -rounds runs the exhaustive full-information analysis: unlike the
	// flooding simulation below (one algorithm, one adversary), it
	// quantifies over every algorithm and every ≤f loss pattern, searching
	// for the smallest solvable horizon on the incremental engine.
	if *rounds > 0 {
		eng, berr := engineOptions(*backend)
		if berr != nil {
			fmt.Fprintln(stderr, berr)
			return 2
		}
		ctx, cancel := rootContext(*timeout)
		rep, err := coordattack.AnalyzeNet(ctx, coordattack.NetAnalysisRequest{
			Graph: g, F: *f, Horizon: *rounds, MinRounds: true, VerdictOnly: true,
			Engine: eng,
		})
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "capnet: engine analysis aborted: %v\n", err)
			return 1
		}
		if rep.Found {
			fmt.Fprintf(stdout, "engine: solvable from horizon %d (exhaustive over all algorithms)\n", rep.Rounds)
		} else {
			fmt.Fprintf(stdout, "engine: not solvable up to horizon %d (exhaustive over all algorithms)\n", *rounds)
		}
		if *stats {
			fmt.Fprintf(stdout, "engine stats: %s\n", formatEngineStats(rep.Stats))
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]coordattack.Value, g.N())
	if *adversary == "cut" {
		// The crispest demonstration: put the minimum on the side whose
		// outgoing cut messages the adversary silences.
		for _, v := range cut.SideB {
			inputs[v] = 1
		}
	} else {
		for i := range inputs {
			inputs[i] = coordattack.Value(rng.Intn(2))
		}
	}

	var adv coordattack.NetAdversary
	switch *adversary {
	case "random":
		adv = coordattack.RandomLossAdversary(*f, rng)
	case "targeted":
		adv = coordattack.TargetedCutAdversary(cut, *f)
	case "cut":
		adv = coordattack.CutAdversary(cut, coordattack.ConstantScenario(coordattack.LossWhite))
	case "none":
		adv = coordattack.NoDrops()
	default:
		fmt.Fprintf(stderr, "unknown adversary %q\n", *adversary)
		return 2
	}

	// The hardened runner bounds the simulation by the -timeout root
	// context (checked at round boundaries) and crash-isolates node
	// panics instead of taking the whole process down.
	ctx, cancel := rootContext(*timeout)
	defer cancel()
	ht := coordattack.RunNetworkHardened(ctx, g, coordattack.NewFloodNodes(g), inputs, adv, g.N()+2)
	if ht.Err != nil {
		fmt.Fprintf(stderr, "capnet: simulation aborted: %v\n", ht.Err)
		return 1
	}
	rep := coordattack.CheckNetwork(ht.Trace)
	fmt.Fprintf(stdout, "\nflooding: %s\nconsensus: %v", ht.Trace, rep.OK())
	if !rep.OK() {
		fmt.Fprintf(stdout, " %v", rep.Violations)
	}
	fmt.Fprintln(stdout)
	return 0
}
