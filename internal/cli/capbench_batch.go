package cli

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The -batch phase compares the two ways of asking N solvability
// questions: one HTTP request per question versus /v1/solve/batch
// groups of -batch-size. Both legs run the SAME warmed query
// population with the same number of items in flight (batch keeps
// workers x batch-size items outstanding, so the single leg runs
// workers x batch-size closed-loop workers), so the delta isolates the
// per-request overhead batching amortizes (connection round trips,
// admission, decode, encode) rather than engine time or offered
// concurrency. Alloc counts are whole-process mallocs per item (client
// included), which is what makes them comparable between the legs.

type batchComparison struct {
	Items     int `json:"items"`
	BatchSize int `json:"batchSize"`
	Workers   int `json:"workers"`

	SingleQPS        float64 `json:"singleQps"`
	SingleP50Ms      float64 `json:"singleP50Ms"`
	SingleP99Ms      float64 `json:"singleP99Ms"`
	SingleErrors     int     `json:"singleErrors"`
	SingleAllocsItem float64 `json:"singleAllocsPerRequest"`

	BatchItemsPerSec float64 `json:"batchItemsPerSec"`
	BatchP50Ms       float64 `json:"batchP50Ms"`
	BatchP99Ms       float64 `json:"batchP99Ms"`
	BatchErrors      int     `json:"batchErrors"`
	BatchAllocsItem  float64 `json:"batchAllocsPerRequest"`

	// SpeedupX is batch items/sec over single-item qps; the -batch-bar
	// gate requires SpeedupX >= bar AND BatchP99Ms <= SingleP99Ms.
	SpeedupX float64 `json:"speedupX"`
	BatchBar float64 `json:"batchBar,omitempty"`
	BatchOK  *bool   `json:"batchOk,omitempty"`
}

// buildBatchQueries generates the shared query population: cacheable
// solvable requests over the scheme registry.
func (b *bench) buildBatchQueries(n int, rng *rand.Rand) []string {
	qs := make([]string, n)
	for i := range qs {
		h := 1 + rng.Intn(b.maxHorizon)
		qs[i] = fmt.Sprintf(`{"scheme":%q,"horizon":%d}`, b.names[rng.Intn(len(b.names))], h)
	}
	return qs
}

func (b *bench) runBatchComparison(ctx context.Context, items, batchSize, workers int, rng *rand.Rand) batchComparison {
	cmp := batchComparison{Items: items, BatchSize: batchSize, Workers: workers}
	queries := b.buildBatchQueries(items, rng)

	// Warm every distinct query once so both measured legs exercise the
	// cached-hit hot path, not engine runs whose cost would drown the
	// serving overhead being compared.
	seen := map[string]bool{}
	for _, q := range queries {
		if !seen[q] {
			seen[q] = true
			b.one(ctx, "warm", "/v1/solvable", q)
		}
	}

	singleMs, singleWall, singleErrs, singleAllocs := b.singleLeg(ctx, queries, workers*batchSize)
	cmp.SingleP50Ms, _, cmp.SingleP99Ms, _ = percentiles(singleMs)
	cmp.SingleErrors = singleErrs
	if singleWall > 0 {
		cmp.SingleQPS = float64(len(singleMs)) / singleWall.Seconds()
	}
	cmp.SingleAllocsItem = singleAllocs

	batchMs, batchWall, batchErrs, batchAllocs := b.batchLeg(ctx, queries, batchSize, workers)
	cmp.BatchP50Ms, _, cmp.BatchP99Ms, _ = percentiles(batchMs)
	cmp.BatchErrors = batchErrs
	if batchWall > 0 {
		cmp.BatchItemsPerSec = float64(len(batchMs)) / batchWall.Seconds()
	}
	cmp.BatchAllocsItem = batchAllocs
	if cmp.SingleQPS > 0 {
		cmp.SpeedupX = cmp.BatchItemsPerSec / cmp.SingleQPS
	}
	return cmp
}

// mallocsNow reads the process malloc counter (GC-independent: Mallocs
// is cumulative).
func mallocsNow() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// singleLeg issues every query as its own /v1/solvable request from
// `workers` closed-loop workers.
func (b *bench) singleLeg(ctx context.Context, queries []string, workers int) (ms []float64, wall time.Duration, errs int, allocsPerItem float64) {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		wg      sync.WaitGroup
		errsN   atomic.Int64
		samples []float64
	)
	m0 := mallocsNow()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) || ctx.Err() != nil {
					return
				}
				s := b.one(ctx, "single", "/v1/solvable", queries[i])
				if s.failed || s.status != http.StatusOK {
					errsN.Add(1)
				}
				mu.Lock()
				samples = append(samples, float64(s.dur)/float64(time.Millisecond))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall = time.Since(start)
	allocs := float64(mallocsNow() - m0)
	if len(queries) > 0 {
		allocsPerItem = allocs / float64(len(queries))
	}
	return samples, wall, int(errsN.Load()), allocsPerItem
}

// batchLeg issues the same queries grouped into /v1/solve/batch bodies
// of batchSize, from the same number of closed-loop workers. Per-item
// latency is measured from batch send to that item's line arriving.
func (b *bench) batchLeg(ctx context.Context, queries []string, batchSize, workers int) (ms []float64, wall time.Duration, errs int, allocsPerItem float64) {
	var groups []string
	for at := 0; at < len(queries); at += batchSize {
		end := min(at+batchSize, len(queries))
		groups = append(groups, `{"items":[`+strings.Join(queries[at:end], ",")+`]}`)
	}
	var (
		next    atomic.Int64
		mu      sync.Mutex
		wg      sync.WaitGroup
		errsN   atomic.Int64
		samples []float64
	)
	m0 := mallocsNow()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= len(groups) || ctx.Err() != nil {
					return
				}
				sent := time.Now()
				lineMs, lineErrs := b.oneBatch(ctx, groups[g], sent)
				errsN.Add(int64(lineErrs))
				mu.Lock()
				samples = append(samples, lineMs...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall = time.Since(start)
	allocs := float64(mallocsNow() - m0)
	if len(queries) > 0 {
		allocsPerItem = allocs / float64(len(queries))
	}
	return samples, wall, int(errsN.Load()), allocsPerItem
}

// oneBatch sends one batch request and times each streamed line.
func (b *bench) oneBatch(ctx context.Context, body string, sent time.Time) (lineMs []float64, errs int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/solve/batch", strings.NewReader(body))
	if err != nil {
		return nil, 1
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 1
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 8<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		lineMs = append(lineMs, float64(time.Since(sent))/float64(time.Millisecond))
		if !strings.Contains(sc.Text(), `"status":200`) {
			errs++
		}
	}
	if sc.Err() != nil {
		errs++
	}
	return lineMs, errs
}
