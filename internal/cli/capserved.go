package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os/signal"
	"strings"
	"syscall"
	"time"

	coordattack "repro"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
)

// Capserved runs the resilient analysis service until SIGTERM/SIGINT,
// then drains gracefully: readiness flips, the listener stops
// accepting, in-flight requests finish under the drain deadline, and
// final metrics are flushed to stderr.
//
// With -coordinator it runs the cluster router instead: requests are
// consistent-hashed across the -backends capserved instances, with
// hedged requests, per-shard circuit breakers, a two-tier verdict
// cache, and chaos-campaign fan-out. Membership is live: the admin API
// (GET/POST/DELETE /v1/cluster/members) joins and removes backends at
// runtime, and the health prober ejects dead backends from routing and
// readmits recovered ones with a warm-verdict handoff.
func Capserved(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline ceiling")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	concurrency := fs.Int("concurrency", 0, "max concurrent expensive analyses (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth before shedding (0 = 2x concurrency)")
	cache := fs.Int("cache", 1024, "LRU result-cache entries")
	breakerTrip := fs.Int("breaker-trip", 5, "consecutive engine failures that trip the circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 10*time.Second, "breaker fast-fail window before a half-open probe")
	maxHorizon := fs.Int("max-horizon", 12, "largest accepted analysis horizon")
	maxBatch := fs.Int("max-batch", 64, "largest accepted /v1/solve/batch item count")
	backendStr := fs.String("backend", "auto", "analysis backend for served requests: auto|symbolic|enumerate")
	warmStore := fs.String("warm-store", "", "path of the persistent warm verdict store (JSON lines, loaded at boot)")
	coordinator := fs.Bool("coordinator", false, "run as cluster coordinator over -backends instead of serving analyses directly")
	backends := fs.String("backends", "", "comma-separated backend base URLs for -coordinator mode (e.g. http://127.0.0.1:8321,http://127.0.0.1:8322)")
	replicas := fs.Int("replicas", 2, "replica candidates per keyed request in -coordinator mode")
	hedgeDelay := fs.Duration("hedge-delay", 250*time.Millisecond, "silence before a keyed request is hedged to the next replica (-coordinator mode)")
	probeInterval := fs.Duration("probe-interval", time.Second, "health-probe period for live membership in -coordinator mode (0 disables the prober)")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe deadline (0 = min(probe-interval, 1s))")
	probeFail := fs.Int("probe-fail", 3, "consecutive probe failures that eject a backend from routing")
	probeRecover := fs.Int("probe-recover", 2, "consecutive probe successes that readmit an ejected backend")
	handoffMax := fs.Int("handoff-max", 1024, "max warm verdicts replayed to a joining/readmitted backend (negative disables handoffs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}

	if *coordinator {
		var bases []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, strings.TrimSuffix(b, "/"))
			}
		}
		co, err := cluster.New(cluster.Config{
			Addr:                  *addr,
			Backends:              bases,
			Replicas:              *replicas,
			HedgeDelay:            *hedgeDelay,
			RequestTimeout:        *timeout,
			DrainTimeout:          *drain,
			CacheEntries:          *cache,
			WarmStorePath:         *warmStore,
			BreakerThreshold:      *breakerTrip,
			BreakerCooldown:       *breakerCooldown,
			ProbeInterval:         *probeInterval,
			ProbeTimeout:          *probeTimeout,
			ProbeFailThreshold:    *probeFail,
			ProbeRecoverThreshold: *probeRecover,
			HandoffMaxEntries:     *handoffMax,
			Logf:                  logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := co.ListenAndServe(ctx); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "capserved: clean shutdown")
		return 0
	}

	backend, err := coordattack.ParseEngineBackend(*backendStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	s := serve.New(serve.Config{
		Addr:                *addr,
		AnalysisConcurrency: *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
		CacheEntries:        *cache,
		WarmStorePath:       *warmStore,
		BreakerThreshold:    *breakerTrip,
		BreakerCooldown:     *breakerCooldown,
		MaxHorizon:          *maxHorizon,
		MaxBatchItems:       *maxBatch,
		Backend:             backend,
		Logf:                logf,
	})
	if err := s.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, "capserved: clean shutdown")
	return 0
}
