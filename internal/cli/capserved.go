package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os/signal"
	"syscall"
	"time"

	coordattack "repro"
	"repro/internal/serve"
)

// Capserved runs the resilient analysis service until SIGTERM/SIGINT,
// then drains gracefully: readiness flips, the listener stops
// accepting, in-flight requests finish under the drain deadline, and
// final metrics are flushed to stderr.
func Capserved(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline ceiling")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	concurrency := fs.Int("concurrency", 0, "max concurrent expensive analyses (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth before shedding (0 = 2x concurrency)")
	cache := fs.Int("cache", 1024, "LRU result-cache entries")
	breakerTrip := fs.Int("breaker-trip", 5, "consecutive engine failures that trip the circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 10*time.Second, "breaker fast-fail window before a half-open probe")
	maxHorizon := fs.Int("max-horizon", 12, "largest accepted analysis horizon")
	backendStr := fs.String("backend", "auto", "analysis backend for served requests: auto|symbolic|enumerate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	backend, err := coordattack.ParseEngineBackend(*backendStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	s := serve.New(serve.Config{
		Addr:                *addr,
		AnalysisConcurrency: *concurrency,
		QueueDepth:          *queue,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
		CacheEntries:        *cache,
		BreakerThreshold:    *breakerTrip,
		BreakerCooldown:     *breakerCooldown,
		MaxHorizon:          *maxHorizon,
		Backend:             backend,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err := s.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, "capserved: clean shutdown")
	return 0
}
