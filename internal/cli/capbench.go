package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	coordattack "repro"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
)

// Capbench is the cluster load generator: an open-loop arrival process
// at a target RPS over a mixed query population (classification,
// bounded-round solvability, network solvability, and a "heavy" class
// of cache-busting unique automata), reporting p50/p95/p99 latency,
// shed rate, and — against a coordinator — hedge/failover rates scraped
// from /v1/stats.
//
// With -base it drives an external capserved or coordinator. Without
// -base it spins up a self-contained cluster (N in-process backends +
// one coordinator), measures a healthy phase, retunes the hedge trigger
// to half the measured healthy p99 (the "tail at scale" policy), makes
// one backend slow, and measures a degraded phase — the experiment
// behind BENCH_7.json. -p99-bar R fails the run (exit 1) if degraded
// p99 exceeds R x healthy p99.
func Capbench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "", "external target base URL (empty = self-contained 3-node cluster)")
	rps := fs.Float64("rps", 200, "target request rate per second (open loop)")
	duration := fs.Duration("duration", 4*time.Second, "measured duration of each phase")
	warmup := fs.Duration("warmup", 1*time.Second, "unmeasured warmup before the first phase")
	mixSpec := fs.String("mix", "solvable=2,classify=2,netsolve=2,heavy=4", "query-class weights")
	seed := fs.Int64("seed", 1, "workload seed (query choice and heavy-automaton generation)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	nBackends := fs.Int("backends-n", 3, "self-contained mode: number of backend nodes")
	replicas := fs.Int("replicas", 2, "self-contained mode: replica candidates per keyed request")
	hedgeDelay := fs.Duration("hedge-delay", 25*time.Millisecond, "self-contained mode: initial hedge trigger")
	slowDelay := fs.Duration("slow-delay", 150*time.Millisecond, "self-contained mode: injected per-request delay on the slow backend (0 = skip degraded phase)")
	maxHorizon := fs.Int("max-horizon", 9, "largest horizon generated queries use")
	cacheEntries := fs.Int("cache", 4096, "cache entries per node")
	p99Bar := fs.Float64("p99-bar", 0, "fail if degraded p99 > bar x healthy p99 (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	b := &bench{
		client:     &http.Client{Timeout: 15 * time.Second},
		mix:        mix,
		maxHorizon: *maxHorizon,
		names:      coordattack.SchemeNames(),
	}

	report := benchReport{
		Generator: "capbench",
		Config: benchConfig{
			TargetRPS:   *rps,
			DurationSec: duration.Seconds(),
			Mix:         *mixSpec,
			Seed:        *seed,
			MaxHorizon:  *maxHorizon,
		},
	}

	if *base != "" {
		b.base = strings.TrimSuffix(*base, "/")
		report.Config.Target = b.base
		_ = b.runPhase(ctx, "warmup", *rps, *warmup, rand.New(rand.NewSource(*seed^0x5eed)))
		report.Phases = append(report.Phases,
			b.runPhase(ctx, "healthy", *rps, *duration, rand.New(rand.NewSource(*seed))))
	} else {
		lc, err := startLocalCluster(localClusterConfig{
			Backends:     *nBackends,
			Replicas:     *replicas,
			HedgeDelay:   *hedgeDelay,
			CacheEntries: *cacheEntries,
			MaxHorizon:   *maxHorizon,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer lc.stop()
		b.base = lc.coURL
		report.Config.Target = fmt.Sprintf("self-contained: %d backends, %d replicas", *nBackends, *replicas)
		report.Config.Backends = *nBackends
		report.Config.Replicas = *replicas

		_ = b.runPhase(ctx, "warmup", *rps, *warmup, rand.New(rand.NewSource(*seed^0x5eed)))
		healthy := b.runPhase(ctx, "healthy", *rps, *duration, rand.New(rand.NewSource(*seed)))
		report.Phases = append(report.Phases, healthy)

		if *slowDelay > 0 {
			// Retune hedging to the measured tail: trigger at half the
			// healthy p99 so a hedge costs little extra load but caps the
			// slow shard's contribution to the degraded tail.
			tuned := time.Duration(healthy.P99Ms / 2 * float64(time.Millisecond))
			tuned = min(max(tuned, time.Millisecond), 250*time.Millisecond)
			lc.co.SetHedgeDelay(tuned)
			report.Config.TunedHedgeDelayMs = float64(tuned) / float64(time.Millisecond)
			report.Config.SlowDelayMs = float64(*slowDelay) / float64(time.Millisecond)
			lc.slow.delay.Store(int64(*slowDelay))
			degraded := b.runPhase(ctx, "one-slow-backend", *rps, *duration,
				rand.New(rand.NewSource(*seed+1)))
			report.Phases = append(report.Phases, degraded)
			if healthy.P99Ms > 0 {
				report.DegradedP99Ratio = degraded.P99Ms / healthy.P99Ms
			}
			report.P99Bar = *p99Bar
			if *p99Bar > 0 {
				ok := report.DegradedP99Ratio <= *p99Bar
				report.BarOK = &ok
			}
		}
	}

	if resp, err := b.client.Get(b.base + "/v1/stats"); err == nil {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if json.Valid(raw) {
			report.ClusterStats = raw
		}
	}

	enc, _ := json.MarshalIndent(report, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "capbench: report written to %s\n", *out)
	} else {
		stdout.Write(enc)
	}
	if report.BarOK != nil && !*report.BarOK {
		fmt.Fprintf(stderr, "capbench: degraded p99 is %.2fx healthy p99 (bar %.2fx)\n",
			report.DegradedP99Ratio, *p99Bar)
		return 1
	}
	return 0
}

// --- report shapes ----------------------------------------------------

type benchConfig struct {
	Target            string  `json:"target"`
	TargetRPS         float64 `json:"targetRps"`
	DurationSec       float64 `json:"durationSec"`
	Mix               string  `json:"mix"`
	Seed              int64   `json:"seed"`
	MaxHorizon        int     `json:"maxHorizon"`
	Backends          int     `json:"backends,omitempty"`
	Replicas          int     `json:"replicas,omitempty"`
	TunedHedgeDelayMs float64 `json:"tunedHedgeDelayMs,omitempty"`
	SlowDelayMs       float64 `json:"slowDelayMs,omitempty"`
}

type benchClassStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

type benchPhase struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	AchievedRPS float64 `json:"achievedRps"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	ShedRate    float64 `json:"shedRate"`
	P50Ms       float64 `json:"p50Ms"`
	P95Ms       float64 `json:"p95Ms"`
	P99Ms       float64 `json:"p99Ms"`
	MaxMs       float64 `json:"maxMs"`

	// Coordinator-side deltas over the phase, from /v1/stats.
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedgeWins"`
	Failovers int64   `json:"failovers"`
	HedgeRate float64 `json:"hedgeRate"` // hedges / keyed requests

	Classes map[string]benchClassStats `json:"classes"`
}

type benchReport struct {
	Generator        string       `json:"generator"`
	Config           benchConfig  `json:"config"`
	Phases           []benchPhase `json:"phases"`
	DegradedP99Ratio float64      `json:"degradedP99Ratio,omitempty"`
	P99Bar           float64      `json:"p99Bar,omitempty"`
	BarOK            *bool        `json:"barOk,omitempty"`
	// ClusterStats is the target's final /v1/stats snapshot, embedded
	// verbatim so the report artifact carries the shard-level picture.
	ClusterStats json.RawMessage `json:"clusterStats,omitempty"`
}

// --- load generation --------------------------------------------------

type benchSample struct {
	class  string
	status int
	failed bool
	dur    time.Duration
}

type bench struct {
	base       string
	client     *http.Client
	mix        []mixEntry
	maxHorizon int
	names      []string
}

type mixEntry struct {
	name   string
	weight int
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("capbench: bad mix entry %q (want class=weight)", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("capbench: bad mix weight %q", part)
		}
		switch name {
		case "solvable", "classify", "netsolve", "heavy":
		default:
			return nil, fmt.Errorf("capbench: unknown query class %q", name)
		}
		if n > 0 {
			mix = append(mix, mixEntry{name: name, weight: n})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("capbench: mix selects no classes")
	}
	return mix, nil
}

func (b *bench) pickClass(rng *rand.Rand) string {
	total := 0
	for _, m := range b.mix {
		total += m.weight
	}
	r := rng.Intn(total)
	for _, m := range b.mix {
		if r < m.weight {
			return m.name
		}
		r -= m.weight
	}
	return b.mix[len(b.mix)-1].name
}

var benchGraphs = []string{
	`{"graph":"cycle","n":4,"f":1,"rounds":%d}`,
	`{"graph":"cycle","n":5,"f":1,"rounds":%d}`,
	`{"graph":"complete","n":4,"f":1,"rounds":%d}`,
	`{"graph":"path","n":4,"f":1,"rounds":%d}`,
	`{"graph":"star","n":5,"f":1,"rounds":%d}`,
}

// buildQuery picks one concrete request for the class. The heavy class
// subtracts a random ultimately periodic scenario from S2, producing an
// automaton (and hence cache key) almost surely never seen before —
// every heavy query is a real engine run on some backend.
func (b *bench) buildQuery(class string, rng *rand.Rand) (path, body string) {
	switch class {
	case "classify":
		return "/v1/classify", fmt.Sprintf(`{"scheme":%q}`, b.names[rng.Intn(len(b.names))])
	case "solvable":
		h := 1 + rng.Intn(b.maxHorizon)
		return "/v1/solvable", fmt.Sprintf(`{"scheme":%q,"horizon":%d}`,
			b.names[rng.Intn(len(b.names))], h)
	case "netsolve":
		return "/v1/net/solvable", fmt.Sprintf(benchGraphs[rng.Intn(len(benchGraphs))], 1+rng.Intn(3))
	default: // heavy
		const sym = ".wb"
		word := make([]byte, 5)
		for i := range word {
			word[i] = sym[rng.Intn(len(sym))]
		}
		h := max(b.maxHorizon-2, 1) + rng.Intn(3)
		h = min(h, b.maxHorizon)
		return "/v1/solvable", fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":%d}`, word, h)
	}
}

// runPhase drives the target open-loop: arrivals fire on a fixed clock
// regardless of completions, so a slow server accumulates in-flight
// work instead of silently throttling the offered load.
func (b *bench) runPhase(ctx context.Context, name string, rps float64, dur time.Duration, rng *rand.Rand) benchPhase {
	before := b.scrapeStats()
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Now().Add(dur)
	tick := time.NewTicker(interval)
	defer tick.Stop()

	var (
		mu      sync.Mutex
		samples []benchSample
		wg      sync.WaitGroup
	)
	start := time.Now()
	for time.Now().Before(deadline) && ctx.Err() == nil {
		<-tick.C
		class := b.pickClass(rng)
		path, body := b.buildQuery(class, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.one(ctx, class, path, body)
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
	}
	elapsed := time.Since(start)
	wg.Wait()
	after := b.scrapeStats()

	ph := benchPhase{Name: name, Requests: len(samples), Classes: map[string]benchClassStats{}}
	if elapsed > 0 {
		ph.AchievedRPS = float64(len(samples)) / elapsed.Seconds()
	}
	var all []float64
	perClass := map[string][]float64{}
	for _, s := range samples {
		ms := float64(s.dur) / float64(time.Millisecond)
		all = append(all, ms)
		perClass[s.class] = append(perClass[s.class], ms)
		cs := ph.Classes[s.class]
		cs.Requests++
		switch {
		case s.status == http.StatusTooManyRequests:
			cs.Shed++
			ph.Shed++
		case s.failed || s.status >= 400:
			cs.Errors++
			ph.Errors++
		default:
			cs.OK++
			ph.OK++
		}
		ph.Classes[s.class] = cs
	}
	ph.P50Ms, ph.P95Ms, ph.P99Ms, ph.MaxMs = percentiles(all)
	for class, ms := range perClass {
		cs := ph.Classes[class]
		cs.P50Ms, _, cs.P99Ms, _ = percentiles(ms)
		ph.Classes[class] = cs
	}
	if len(samples) > 0 {
		ph.ShedRate = float64(ph.Shed) / float64(len(samples))
	}
	ph.Hedges = after.Hedges - before.Hedges
	ph.HedgeWins = after.HedgeWins - before.HedgeWins
	ph.Failovers = after.Failovers - before.Failovers
	if keyed := after.KeyedRequests - before.KeyedRequests; keyed > 0 {
		ph.HedgeRate = float64(ph.Hedges) / float64(keyed)
	}
	return ph
}

func (b *bench) one(ctx context.Context, class, path, body string) benchSample {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, strings.NewReader(body))
	if err != nil {
		return benchSample{class: class, failed: true, dur: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return benchSample{class: class, failed: true, dur: time.Since(start)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return benchSample{class: class, status: resp.StatusCode, dur: time.Since(start)}
}

type coordStats struct {
	KeyedRequests int64 `json:"keyedRequests"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedgeWins"`
	Failovers     int64 `json:"failovers"`
}

// scrapeStats reads the coordinator counters; against a bare backend
// (no hedge counters in its /v1/stats) the unknown fields simply stay
// zero, so deltas degrade to zero rather than erroring.
func (b *bench) scrapeStats() coordStats {
	var st coordStats
	resp, err := b.client.Get(b.base + "/v1/stats")
	if err != nil {
		return st
	}
	defer resp.Body.Close()
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
	return st
}

func percentiles(ms []float64) (p50, p95, p99, maxv float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}

// --- self-contained cluster -------------------------------------------

// slowGate injects a per-request delay in front of a backend's /v1/
// surface — the "one slow shard" of the degraded phase. Zero delay is a
// passthrough.
type slowGate struct {
	delay atomic.Int64 // nanoseconds
}

func (g *slowGate) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := time.Duration(g.delay.Load()); d > 0 && strings.HasPrefix(r.URL.Path, "/v1/") {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

type localClusterConfig struct {
	Backends     int
	Replicas     int
	HedgeDelay   time.Duration
	CacheEntries int
	MaxHorizon   int
}

type localCluster struct {
	servers []*http.Server
	lns     []net.Listener
	slow    *slowGate
	co      *cluster.Coordinator
	coSrv   *http.Server
	coURL   string
}

// startLocalCluster boots cfg.Backends in-process capserved nodes (the
// first behind a slowGate) plus a coordinator over them, all on
// ephemeral loopback ports.
func startLocalCluster(cfg localClusterConfig) (*localCluster, error) {
	quiet := func(string, ...any) {}
	lc := &localCluster{slow: &slowGate{}}
	var urls []string
	for i := 0; i < cfg.Backends; i++ {
		s := serve.New(serve.Config{
			RequestTimeout: 10 * time.Second,
			CacheEntries:   cfg.CacheEntries,
			MaxHorizon:     cfg.MaxHorizon,
			Logf:           quiet,
		})
		h := s.Handler()
		if i == 0 {
			h = lc.slow.wrap(h)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.stop()
			return nil, fmt.Errorf("capbench: backend %d: %w", i, err)
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		lc.servers = append(lc.servers, srv)
		lc.lns = append(lc.lns, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	co, err := cluster.New(cluster.Config{
		Backends:     urls,
		Replicas:     cfg.Replicas,
		HedgeDelay:   cfg.HedgeDelay,
		CacheEntries: cfg.CacheEntries,
		Logf:         quiet,
	})
	if err != nil {
		lc.stop()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.stop()
		return nil, err
	}
	lc.co = co
	lc.coSrv = &http.Server{Handler: co.Handler()}
	go lc.coSrv.Serve(ln)
	lc.lns = append(lc.lns, ln)
	lc.coURL = "http://" + ln.Addr().String()
	return lc, nil
}

func (lc *localCluster) stop() {
	if lc.coSrv != nil {
		lc.coSrv.Close()
	}
	if lc.co != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		lc.co.Shutdown(ctx)
		cancel()
	}
	for _, srv := range lc.servers {
		srv.Close()
	}
}
