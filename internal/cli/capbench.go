package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	coordattack "repro"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
)

// Capbench is the cluster load generator: an open-loop arrival process
// at a target RPS over a mixed query population (classification,
// bounded-round solvability, network solvability, and a "heavy" class
// of cache-busting unique automata), reporting p50/p95/p99 latency,
// shed rate, and — against a coordinator — hedge/failover rates scraped
// from /v1/stats.
//
// With -base it drives an external capserved or coordinator. Without
// -base it spins up a self-contained cluster (N in-process backends +
// one coordinator), measures a healthy phase, retunes the hedge trigger
// to half the measured healthy p99 (the "tail at scale" policy), makes
// one backend slow, and measures a degraded phase — the experiment
// behind BENCH_7.json. -p99-bar R fails the run (exit 1) if degraded
// p99 exceeds R x healthy p99.
//
// -churn adds a membership-churn phase (BENCH_8.json): the health
// prober is enabled, one backend is killed a quarter of the way into
// the phase and restarted at the halfway mark, and the report records
// the phase's availability (fraction of non-shed, non-error replies)
// plus the ejection/readmission counts the prober produced. The churn
// phase shares -p99-bar (churn p99 vs healthy p99) and adds
// -availability-bar as its own gate.
func Capbench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "", "external target base URL (empty = self-contained 3-node cluster)")
	rps := fs.Float64("rps", 200, "target request rate per second (open loop)")
	duration := fs.Duration("duration", 4*time.Second, "measured duration of each phase")
	warmup := fs.Duration("warmup", 1*time.Second, "unmeasured warmup before the first phase")
	mixSpec := fs.String("mix", "solvable=2,classify=2,netsolve=2,heavy=4", "query-class weights")
	seed := fs.Int64("seed", 1, "workload seed (query choice and heavy-automaton generation)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	nBackends := fs.Int("backends-n", 3, "self-contained mode: number of backend nodes")
	replicas := fs.Int("replicas", 2, "self-contained mode: replica candidates per keyed request")
	hedgeDelay := fs.Duration("hedge-delay", 25*time.Millisecond, "self-contained mode: initial hedge trigger")
	slowDelay := fs.Duration("slow-delay", 150*time.Millisecond, "self-contained mode: injected per-request delay on the slow backend (0 = skip degraded phase)")
	maxHorizon := fs.Int("max-horizon", 9, "largest horizon generated queries use")
	cacheEntries := fs.Int("cache", 4096, "cache entries per node")
	p99Bar := fs.Float64("p99-bar", 0, "fail if degraded/churn p99 > bar x healthy p99 (0 = report only)")
	churn := fs.Bool("churn", false, "self-contained mode: add a membership-churn phase — one backend is killed mid-phase, auto-ejected by the prober, restarted, and readmitted")
	availBar := fs.Float64("availability-bar", 0, "fail if churn-phase availability < bar (0 = report only)")
	batch := fs.Bool("batch", false, "add a batch-vs-single comparison phase over /v1/solve/batch")
	batchSize := fs.Int("batch-size", 16, "batch mode: items per /v1/solve/batch request")
	batchItems := fs.Int("batch-items", 512, "batch mode: total items each leg serves")
	batchWorkers := fs.Int("batch-workers", 8, "batch mode: closed-loop workers per leg")
	batchBar := fs.Float64("batch-bar", 0, "fail unless batch items/sec >= bar x single-item qps at equal-or-better p99 (0 = report only)")
	wireLeg := fs.Bool("wire", false, "add a binary-vs-JSON batch encoding comparison over /v1/solve/batch")
	wireBar := fs.Float64("wire-bar", 0, "fail unless binary batch items/sec >= bar x JSON batch items/sec at equal-or-better p99 (0 = report only)")
	wireBytesBar := fs.Float64("wire-bytes-bar", 0, "fail unless binary bytes/item <= bar x JSON bytes/item (0 = report only)")
	memProfile := fs.String("memprofile", "", "write a heap/alloc pprof profile here at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *churn && *base != "" {
		fmt.Fprintln(stderr, "capbench: -churn needs the self-contained cluster (drop -base)")
		return 2
	}
	if *churn && *nBackends < 2 {
		fmt.Fprintln(stderr, "capbench: -churn needs at least 2 backends")
		return 2
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The default transport keeps only 2 idle conns per host; under the
	// bench's concurrency that measures TCP dial churn, not the server.
	transport := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	}
	b := &bench{
		client:     &http.Client{Timeout: 15 * time.Second, Transport: transport},
		mix:        mix,
		maxHorizon: *maxHorizon,
		names:      coordattack.SchemeNames(),
	}

	report := benchReport{
		Generator: "capbench",
		Config: benchConfig{
			TargetRPS:   *rps,
			DurationSec: duration.Seconds(),
			Mix:         *mixSpec,
			Seed:        *seed,
			MaxHorizon:  *maxHorizon,
		},
	}

	if *base != "" {
		b.base = strings.TrimSuffix(*base, "/")
		report.Config.Target = b.base
		_ = b.runPhase(ctx, "warmup", *rps, *warmup, rand.New(rand.NewSource(*seed^0x5eed)))
		report.Phases = append(report.Phases,
			b.runPhase(ctx, "healthy", *rps, *duration, rand.New(rand.NewSource(*seed))))
	} else {
		lcCfg := localClusterConfig{
			Backends:     *nBackends,
			Replicas:     *replicas,
			HedgeDelay:   *hedgeDelay,
			CacheEntries: *cacheEntries,
			MaxHorizon:   *maxHorizon,
		}
		if *churn {
			// Fast probes so ejection and readmission both land well
			// inside the kill window (a quarter of the phase), but with a
			// generous timeout: under full load a saturated box can delay
			// even a trivial /healthz reply, and a slow answer must not
			// read as a dead backend.
			lcCfg.ProbeInterval = 100 * time.Millisecond
			lcCfg.ProbeTimeout = 2 * time.Second
		}
		lc, err := startLocalCluster(lcCfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer lc.stop()
		b.base = lc.coURL
		report.Config.Target = fmt.Sprintf("self-contained: %d backends, %d replicas", *nBackends, *replicas)
		report.Config.Backends = *nBackends
		report.Config.Replicas = *replicas

		_ = b.runPhase(ctx, "warmup", *rps, *warmup, rand.New(rand.NewSource(*seed^0x5eed)))
		healthy := b.runPhase(ctx, "healthy", *rps, *duration, rand.New(rand.NewSource(*seed)))
		report.Phases = append(report.Phases, healthy)

		if *slowDelay > 0 {
			// Retune hedging to the measured tail: trigger at half the
			// healthy p99 so a hedge costs little extra load but caps the
			// slow shard's contribution to the degraded tail.
			tuned := time.Duration(healthy.P99Ms / 2 * float64(time.Millisecond))
			tuned = min(max(tuned, time.Millisecond), 250*time.Millisecond)
			lc.co.SetHedgeDelay(tuned)
			report.Config.TunedHedgeDelayMs = float64(tuned) / float64(time.Millisecond)
			report.Config.SlowDelayMs = float64(*slowDelay) / float64(time.Millisecond)
			lc.slow.delay.Store(int64(*slowDelay))
			degraded := b.runPhase(ctx, "one-slow-backend", *rps, *duration,
				rand.New(rand.NewSource(*seed+1)))
			report.Phases = append(report.Phases, degraded)
			if healthy.P99Ms > 0 {
				report.DegradedP99Ratio = degraded.P99Ms / healthy.P99Ms
			}
			report.P99Bar = *p99Bar
			if *p99Bar > 0 {
				ok := report.DegradedP99Ratio <= *p99Bar
				report.BarOK = &ok
			}
		}

		if *churn {
			report.Config.Churn = true
			lc.slow.delay.Store(0) // churn measures membership, not slowness
			preChurn := b.scrapeStats()
			killAt, restartAt := *duration/4, *duration/2
			go func() {
				time.Sleep(killAt)
				lc.kill.down.Store(true)
				time.Sleep(restartAt - killAt)
				lc.kill.down.Store(false)
			}()
			churnPh := b.runPhase(ctx, "churn", *rps, *duration,
				rand.New(rand.NewSource(*seed+2)))

			// Give the prober a moment to finish readmitting, then count
			// the whole disruption (eject may land inside the phase and
			// readmit just after it).
			convergeBy := time.Now().Add(5 * time.Second)
			for {
				st := b.scrapeStats()
				churnPh.Ejections = st.Membership.Ejections - preChurn.Membership.Ejections
				churnPh.Readmissions = st.Membership.Readmissions - preChurn.Membership.Readmissions
				report.ChurnConverged = st.Membership.Routable == *nBackends &&
					churnPh.Readmissions >= churnPh.Ejections && churnPh.Ejections > 0
				if report.ChurnConverged || time.Now().After(convergeBy) {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			report.Phases = append(report.Phases, churnPh)

			if healthy.P99Ms > 0 {
				report.ChurnP99Ratio = churnPh.P99Ms / healthy.P99Ms
			}
			report.P99Bar = *p99Bar
			report.AvailabilityBar = *availBar
			if *p99Bar > 0 || *availBar > 0 {
				ok := report.ChurnConverged
				if *p99Bar > 0 && report.ChurnP99Ratio > *p99Bar {
					ok = false
				}
				if *availBar > 0 && churnPh.Availability < *availBar {
					ok = false
				}
				report.ChurnOK = &ok
			}
		}
	}

	if *batch {
		cmp := b.runBatchComparison(ctx, *batchItems, *batchSize, *batchWorkers,
			rand.New(rand.NewSource(*seed+3)))
		cmp.BatchBar = *batchBar
		if *batchBar > 0 {
			ok := cmp.SpeedupX >= *batchBar && cmp.BatchP99Ms <= cmp.SingleP99Ms &&
				cmp.SingleErrors == 0 && cmp.BatchErrors == 0
			cmp.BatchOK = &ok
		}
		report.Batch = &cmp
	}

	if *wireLeg {
		wc := b.runWireComparison(ctx, *batchItems, *batchSize, *batchWorkers,
			rand.New(rand.NewSource(*seed+4)))
		wc.WireBar = *wireBar
		wc.WireBytesBar = *wireBytesBar
		if *wireBar > 0 || *wireBytesBar > 0 {
			ok := wc.JSONErrors == 0 && wc.BinaryErrors == 0 &&
				wc.BinaryP99Ms <= wc.JSONP99Ms
			if *wireBar > 0 && wc.SpeedupX < *wireBar {
				ok = false
			}
			if *wireBytesBar > 0 && wc.BytesRatio > *wireBytesBar {
				ok = false
			}
			wc.WireOK = &ok
		}
		report.Wire = &wc
	}

	if resp, err := b.client.Get(b.base + "/v1/stats"); err == nil {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if json.Valid(raw) {
			report.ClusterStats = raw
		}
	}

	enc, _ := json.MarshalIndent(report, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "capbench: report written to %s\n", *out)
	} else {
		stdout.Write(enc)
	}
	if report.BarOK != nil && !*report.BarOK {
		fmt.Fprintf(stderr, "capbench: degraded p99 is %.2fx healthy p99 (bar %.2fx)\n",
			report.DegradedP99Ratio, *p99Bar)
		return 1
	}
	if report.ChurnOK != nil && !*report.ChurnOK {
		fmt.Fprintf(stderr,
			"capbench: churn gate failed: p99 ratio %.2fx (bar %.2fx), availability %.4f (bar %.4f), converged=%v\n",
			report.ChurnP99Ratio, *p99Bar, churnAvailability(report), *availBar, report.ChurnConverged)
		return 1
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(stderr, "capbench: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "capbench: heap profile written to %s\n", *memProfile)
		}
	}
	if report.Batch != nil && report.Batch.BatchOK != nil && !*report.Batch.BatchOK {
		c := report.Batch
		fmt.Fprintf(stderr,
			"capbench: batch gate failed: %.2fx single qps (bar %.2fx), batch p99 %.2fms vs single p99 %.2fms, errors %d/%d\n",
			c.SpeedupX, c.BatchBar, c.BatchP99Ms, c.SingleP99Ms, c.SingleErrors, c.BatchErrors)
		return 1
	}
	if report.Wire != nil && report.Wire.WireOK != nil && !*report.Wire.WireOK {
		c := report.Wire
		fmt.Fprintf(stderr,
			"capbench: wire gate failed: %.2fx JSON items/sec (bar %.2fx), bytes ratio %.3f (bar %.3f), binary p99 %.2fms vs JSON p99 %.2fms, errors %d/%d\n",
			c.SpeedupX, c.WireBar, c.BytesRatio, c.WireBytesBar, c.BinaryP99Ms, c.JSONP99Ms, c.JSONErrors, c.BinaryErrors)
		return 1
	}
	return 0
}

// writeHeapProfile snapshots the heap (alloc_space/alloc_objects
// included) for artifact upload.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects into the profile
	return pprof.WriteHeapProfile(f)
}

// churnAvailability digs the churn phase's availability back out of the
// report for the failure message.
func churnAvailability(r benchReport) float64 {
	for _, ph := range r.Phases {
		if ph.Name == "churn" {
			return ph.Availability
		}
	}
	return 0
}

// --- report shapes ----------------------------------------------------

type benchConfig struct {
	Target            string  `json:"target"`
	TargetRPS         float64 `json:"targetRps"`
	DurationSec       float64 `json:"durationSec"`
	Mix               string  `json:"mix"`
	Seed              int64   `json:"seed"`
	MaxHorizon        int     `json:"maxHorizon"`
	Backends          int     `json:"backends,omitempty"`
	Replicas          int     `json:"replicas,omitempty"`
	TunedHedgeDelayMs float64 `json:"tunedHedgeDelayMs,omitempty"`
	SlowDelayMs       float64 `json:"slowDelayMs,omitempty"`
	Churn             bool    `json:"churn,omitempty"`
}

type benchClassStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

type benchPhase struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	AchievedRPS float64 `json:"achievedRps"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	ShedRate    float64 `json:"shedRate"`
	// Availability is the fraction of requests answered successfully —
	// neither shed (429) nor failed (transport error or >= 400).
	Availability float64 `json:"availability"`
	P50Ms        float64 `json:"p50Ms"`
	P95Ms        float64 `json:"p95Ms"`
	P99Ms        float64 `json:"p99Ms"`
	MaxMs        float64 `json:"maxMs"`

	// Coordinator-side deltas over the phase, from /v1/stats.
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedgeWins"`
	Failovers int64   `json:"failovers"`
	HedgeRate float64 `json:"hedgeRate"` // hedges / keyed requests

	// Membership deltas over the phase (nonzero only under -churn).
	Ejections    int64 `json:"ejections,omitempty"`
	Readmissions int64 `json:"readmissions,omitempty"`

	Classes map[string]benchClassStats `json:"classes"`
}

type benchReport struct {
	Generator        string       `json:"generator"`
	Config           benchConfig  `json:"config"`
	Phases           []benchPhase `json:"phases"`
	DegradedP99Ratio float64      `json:"degradedP99Ratio,omitempty"`
	P99Bar           float64      `json:"p99Bar,omitempty"`
	BarOK            *bool        `json:"barOk,omitempty"`
	// Churn gates: p99 during churn relative to healthy, the phase's
	// availability bar, and whether the killed backend was ejected,
	// readmitted, and the ring converged back to full membership.
	ChurnP99Ratio   float64 `json:"churnP99Ratio,omitempty"`
	AvailabilityBar float64 `json:"availabilityBar,omitempty"`
	ChurnConverged  bool    `json:"churnConverged,omitempty"`
	ChurnOK         *bool   `json:"churnOk,omitempty"`
	// Batch is the batch-vs-single comparison (-batch).
	Batch *batchComparison `json:"batchComparison,omitempty"`
	// Wire is the binary-vs-JSON batch encoding comparison (-wire).
	Wire *wireComparison `json:"wireComparison,omitempty"`
	// ClusterStats is the target's final /v1/stats snapshot, embedded
	// verbatim so the report artifact carries the shard-level picture.
	ClusterStats json.RawMessage `json:"clusterStats,omitempty"`
}

// --- load generation --------------------------------------------------

type benchSample struct {
	class  string
	status int
	failed bool
	dur    time.Duration
}

type bench struct {
	base       string
	client     *http.Client
	mix        []mixEntry
	maxHorizon int
	names      []string
}

type mixEntry struct {
	name   string
	weight int
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("capbench: bad mix entry %q (want class=weight)", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("capbench: bad mix weight %q", part)
		}
		switch name {
		case "solvable", "classify", "netsolve", "heavy":
		default:
			return nil, fmt.Errorf("capbench: unknown query class %q", name)
		}
		if n > 0 {
			mix = append(mix, mixEntry{name: name, weight: n})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("capbench: mix selects no classes")
	}
	return mix, nil
}

func (b *bench) pickClass(rng *rand.Rand) string {
	total := 0
	for _, m := range b.mix {
		total += m.weight
	}
	r := rng.Intn(total)
	for _, m := range b.mix {
		if r < m.weight {
			return m.name
		}
		r -= m.weight
	}
	return b.mix[len(b.mix)-1].name
}

var benchGraphs = []string{
	`{"graph":"cycle","n":4,"f":1,"rounds":%d}`,
	`{"graph":"cycle","n":5,"f":1,"rounds":%d}`,
	`{"graph":"complete","n":4,"f":1,"rounds":%d}`,
	`{"graph":"path","n":4,"f":1,"rounds":%d}`,
	`{"graph":"star","n":5,"f":1,"rounds":%d}`,
}

// buildQuery picks one concrete request for the class. The heavy class
// subtracts a random ultimately periodic scenario from S2, producing an
// automaton (and hence cache key) almost surely never seen before —
// every heavy query is a real engine run on some backend.
func (b *bench) buildQuery(class string, rng *rand.Rand) (path, body string) {
	switch class {
	case "classify":
		return "/v1/classify", fmt.Sprintf(`{"scheme":%q}`, b.names[rng.Intn(len(b.names))])
	case "solvable":
		h := 1 + rng.Intn(b.maxHorizon)
		return "/v1/solvable", fmt.Sprintf(`{"scheme":%q,"horizon":%d}`,
			b.names[rng.Intn(len(b.names))], h)
	case "netsolve":
		return "/v1/net/solvable", fmt.Sprintf(benchGraphs[rng.Intn(len(benchGraphs))], 1+rng.Intn(3))
	default: // heavy
		const sym = ".wb"
		word := make([]byte, 5)
		for i := range word {
			word[i] = sym[rng.Intn(len(sym))]
		}
		h := max(b.maxHorizon-2, 1) + rng.Intn(3)
		h = min(h, b.maxHorizon)
		return "/v1/solvable", fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":%d}`, word, h)
	}
}

// runPhase drives the target open-loop: arrivals fire on a fixed clock
// regardless of completions, so a slow server accumulates in-flight
// work instead of silently throttling the offered load.
func (b *bench) runPhase(ctx context.Context, name string, rps float64, dur time.Duration, rng *rand.Rand) benchPhase {
	before := b.scrapeStats()
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Now().Add(dur)
	tick := time.NewTicker(interval)
	defer tick.Stop()

	var (
		mu      sync.Mutex
		samples []benchSample
		wg      sync.WaitGroup
	)
	start := time.Now()
	for time.Now().Before(deadline) && ctx.Err() == nil {
		<-tick.C
		class := b.pickClass(rng)
		path, body := b.buildQuery(class, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.one(ctx, class, path, body)
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
	}
	elapsed := time.Since(start)
	wg.Wait()
	after := b.scrapeStats()

	ph := benchPhase{Name: name, Requests: len(samples), Classes: map[string]benchClassStats{}}
	if elapsed > 0 {
		ph.AchievedRPS = float64(len(samples)) / elapsed.Seconds()
	}
	var all []float64
	perClass := map[string][]float64{}
	for _, s := range samples {
		ms := float64(s.dur) / float64(time.Millisecond)
		all = append(all, ms)
		perClass[s.class] = append(perClass[s.class], ms)
		cs := ph.Classes[s.class]
		cs.Requests++
		switch {
		case s.status == http.StatusTooManyRequests:
			cs.Shed++
			ph.Shed++
		case s.failed || s.status >= 400:
			cs.Errors++
			ph.Errors++
		default:
			cs.OK++
			ph.OK++
		}
		ph.Classes[s.class] = cs
	}
	ph.P50Ms, ph.P95Ms, ph.P99Ms, ph.MaxMs = percentiles(all)
	for class, ms := range perClass {
		cs := ph.Classes[class]
		cs.P50Ms, _, cs.P99Ms, _ = percentiles(ms)
		ph.Classes[class] = cs
	}
	if len(samples) > 0 {
		ph.ShedRate = float64(ph.Shed) / float64(len(samples))
		ph.Availability = float64(ph.OK) / float64(len(samples))
	}
	ph.Hedges = after.Hedges - before.Hedges
	ph.HedgeWins = after.HedgeWins - before.HedgeWins
	ph.Failovers = after.Failovers - before.Failovers
	ph.Ejections = after.Membership.Ejections - before.Membership.Ejections
	ph.Readmissions = after.Membership.Readmissions - before.Membership.Readmissions
	if keyed := after.KeyedRequests - before.KeyedRequests; keyed > 0 {
		ph.HedgeRate = float64(ph.Hedges) / float64(keyed)
	}
	return ph
}

func (b *bench) one(ctx context.Context, class, path, body string) benchSample {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, strings.NewReader(body))
	if err != nil {
		return benchSample{class: class, failed: true, dur: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return benchSample{class: class, failed: true, dur: time.Since(start)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return benchSample{class: class, status: resp.StatusCode, dur: time.Since(start)}
}

type coordStats struct {
	KeyedRequests int64 `json:"keyedRequests"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedgeWins"`
	Failovers     int64 `json:"failovers"`
	Membership    struct {
		Epoch        int64 `json:"epoch"`
		Routable     int   `json:"routable"`
		Ejections    int64 `json:"ejections"`
		Readmissions int64 `json:"readmissions"`
	} `json:"membership"`
}

// scrapeStats reads the coordinator counters; against a bare backend
// (no hedge counters in its /v1/stats) the unknown fields simply stay
// zero, so deltas degrade to zero rather than erroring.
func (b *bench) scrapeStats() coordStats {
	var st coordStats
	resp, err := b.client.Get(b.base + "/v1/stats")
	if err != nil {
		return st
	}
	defer resp.Body.Close()
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
	return st
}

func percentiles(ms []float64) (p50, p95, p99, maxv float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}

// --- self-contained cluster -------------------------------------------

// slowGate injects a per-request delay in front of a backend's /v1/
// surface — the "one slow shard" of the degraded phase. Zero delay is a
// passthrough.
type slowGate struct {
	delay atomic.Int64 // nanoseconds
}

func (g *slowGate) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := time.Duration(g.delay.Load()); d > 0 && strings.HasPrefix(r.URL.Path, "/v1/") {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// killGate simulates a crashed backend: while down, every connection
// that reaches the wrapped handler is severed without a reply, so the
// coordinator sees transport errors and failed health probes — exactly
// what a kill -9 of the process would produce, minus the ephemeral
// port churn a real restart adds.
type killGate struct {
	down atomic.Bool
}

func (g *killGate) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.down.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}

type localClusterConfig struct {
	Backends     int
	Replicas     int
	HedgeDelay   time.Duration
	CacheEntries int
	MaxHorizon   int
	// ProbeInterval > 0 enables the coordinator's health prober (the
	// churn phase needs automatic ejection and readmission).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
}

type localCluster struct {
	servers []*http.Server
	lns     []net.Listener
	slow    *slowGate
	kill    *killGate
	co      *cluster.Coordinator
	coSrv   *http.Server
	coURL   string
}

// startLocalCluster boots cfg.Backends in-process capserved nodes (the
// first behind a slowGate, the last behind a killGate) plus a
// coordinator over them, all on ephemeral loopback ports.
func startLocalCluster(cfg localClusterConfig) (*localCluster, error) {
	quiet := func(string, ...any) {}
	lc := &localCluster{slow: &slowGate{}, kill: &killGate{}}
	var urls []string
	for i := 0; i < cfg.Backends; i++ {
		s := serve.New(serve.Config{
			RequestTimeout: 10 * time.Second,
			CacheEntries:   cfg.CacheEntries,
			MaxHorizon:     cfg.MaxHorizon,
			Logf:           quiet,
		})
		h := s.Handler()
		if i == 0 {
			h = lc.slow.wrap(h)
		}
		if i == cfg.Backends-1 && i > 0 {
			h = lc.kill.wrap(h)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.stop()
			return nil, fmt.Errorf("capbench: backend %d: %w", i, err)
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		lc.servers = append(lc.servers, srv)
		lc.lns = append(lc.lns, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	co, err := cluster.New(cluster.Config{
		Backends:      urls,
		Replicas:      cfg.Replicas,
		HedgeDelay:    cfg.HedgeDelay,
		CacheEntries:  cfg.CacheEntries,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		Logf:          quiet,
	})
	if err != nil {
		lc.stop()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.stop()
		return nil, err
	}
	lc.co = co
	lc.coSrv = &http.Server{Handler: co.Handler()}
	go lc.coSrv.Serve(ln)
	lc.lns = append(lc.lns, ln)
	lc.coURL = "http://" + ln.Addr().String()
	return lc, nil
}

func (lc *localCluster) stop() {
	if lc.coSrv != nil {
		lc.coSrv.Close()
	}
	if lc.co != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		lc.co.Shutdown(ctx)
		cancel()
	}
	for _, srv := range lc.servers {
		srv.Close()
	}
}
