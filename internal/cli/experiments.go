package cli

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/experiments"
)

// Experiments regenerates the paper's figures and tables.
func Experiments(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiment names")
	run := fs.String("run", "", "run a single experiment by name")
	all := fs.Bool("all", false, "run every experiment in paper order")
	stats := fs.Bool("stats", false, "print aggregated engine instrumentation after the reports")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.Name, e.Paper)
		}
	case *run != "":
		e, err := experiments.ByName(*run)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, e.Run())
	case *all:
		for _, e := range experiments.All() {
			fmt.Fprintln(stdout, e.Run())
		}
	default:
		fs.Usage()
		return 2
	}
	if *stats {
		fmt.Fprintf(stdout, "engine: %s\n", formatEngineStats(experiments.EngineStats()))
	}
	return 0
}
