package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runCmd runs one CLI entry point and returns (exit, stdout, stderr).
func runCmd(t *testing.T, f func([]string, *bytes.Buffer, *bytes.Buffer) int, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := f(args, &out, &errb)
	return code, out.String(), errb.String()
}

func capsolve(args []string, out, errb *bytes.Buffer) int { return Capsolve(args, out, errb) }
func capsim(args []string, out, errb *bytes.Buffer) int   { return Capsim(args, out, errb) }
func capnet(args []string, out, errb *bytes.Buffer) int   { return Capnet(args, out, errb) }
func capexp(args []string, out, errb *bytes.Buffer) int   { return Experiments(args, out, errb) }

func TestCapsolveNamed(t *testing.T) {
	code, out, _ := runCmd(t, capsolve, "-scheme", "S1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"solvable:    true", "fair missing=true", "rounds:      exactly 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCapsolveExprAndMinus(t *testing.T) {
	code, out, _ := runCmd(t, capsolve, "-expr", `[.wb]^w \ {(b)}`)
	if code != 0 || !strings.Contains(out, "solvable:    true") {
		t.Fatalf("expr run: %d\n%s", code, out)
	}
	code, out, _ = runCmd(t, capsolve, "-scheme", "R1", "-minus", "w(b)", "-minus", ".(b)")
	if code != 0 || !strings.Contains(out, "special pair") {
		t.Fatalf("minus run: %d\n%s", code, out)
	}
	// Obstruction verdict.
	code, out, _ = runCmd(t, capsolve, "-scheme", "R1")
	if code != 0 || !strings.Contains(out, "solvable:    false") {
		t.Fatalf("R1: %d\n%s", code, out)
	}
}

func TestCapsolveJSON(t *testing.T) {
	code, out, _ := runCmd(t, capsolve, "-scheme", "C1", "-json", "-horizon", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var v jsonVerdict
	if err := json.Unmarshal([]byte(out), &v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if v.Scheme != "C1" || v.Solvable == nil || !*v.Solvable || v.MinRounds == nil || *v.MinRounds != 2 {
		t.Errorf("verdict: %+v", v)
	}
	if v.ChainHorizon == nil || *v.ChainHorizon != 2 {
		t.Errorf("chain horizon: %+v", v.ChainHorizon)
	}
	if v.Witness == nil {
		t.Error("missing witness")
	}
}

func TestCapsolveList(t *testing.T) {
	code, out, _ := runCmd(t, capsolve, "-list")
	if code != 0 || !strings.Contains(out, "AlmostFair") || !strings.Contains(out, "BX2") {
		t.Fatalf("list output:\n%s", out)
	}
}

func TestCapsolveErrors(t *testing.T) {
	if code, _, _ := runCmd(t, capsolve); code != 2 {
		t.Error("no args should be usage error")
	}
	if code, _, _ := runCmd(t, capsolve, "-scheme", "nope"); code != 1 {
		t.Error("unknown scheme")
	}
	if code, _, _ := runCmd(t, capsolve, "-expr", "[["); code != 1 {
		t.Error("bad expression")
	}
	if code, _, _ := runCmd(t, capsolve, "-scheme", "R1", "-minus", "((("); code != 1 {
		t.Error("bad minus literal")
	}
	if code, _, _ := runCmd(t, capsolve, "-bogusflag"); code != 2 {
		t.Error("bad flag")
	}
	// Σ-scheme: Theorem III.8 undecided, chain answers.
	code, out, _ := runCmd(t, capsolve, "-scheme", "BX1", "-horizon", "4")
	if code != 0 || !strings.Contains(out, "undecided by Theorem III.8") ||
		!strings.Contains(out, "bounded-round solvable from horizon 2") {
		t.Fatalf("BX1: %d\n%s", code, out)
	}
}

func TestCapsimScenario(t *testing.T) {
	code, out, _ := runCmd(t, capsim, "-scheme", "AlmostFair", "-scenario", "w.(.)", "-inputs", "0,1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "consensus: true") {
		t.Errorf("output:\n%s", out)
	}
	// Concurrent runner and sampling paths.
	code, out, _ = runCmd(t, capsim, "-scheme", "C1", "-sample", "2", "-seed", "3", "-concurrent")
	if code != 0 || strings.Count(out, "consensus: true") != 2 {
		t.Fatalf("sampled run:\n%s", out)
	}
	// Verbose tracing.
	code, out, _ = runCmd(t, capsim, "-scheme", "AlmostFair", "-scenario", "bb.(.)", "-verbose")
	if code != 0 || !strings.Contains(out, "ind(w)=") {
		t.Fatalf("verbose run:\n%s", out)
	}
}

func TestCapsimErrors(t *testing.T) {
	if code, _, _ := runCmd(t, capsim, "-scheme", "nope"); code != 1 {
		t.Error("unknown scheme")
	}
	if code, _, _ := runCmd(t, capsim, "-scheme", "R1"); code != 1 {
		t.Error("obstruction cannot run")
	}
	if code, _, _ := runCmd(t, capsim, "-inputs", "zz"); code != 1 {
		t.Error("bad inputs")
	}
	if code, _, _ := runCmd(t, capsim, "-scenario", "((("); code != 1 {
		t.Error("bad scenario")
	}
	// Off-scheme scenario warns but runs (may time out).
	code, _, errb := runCmd(t, capsim, "-scheme", "AlmostFair", "-scenario", "(b)", "-max-rounds", "10")
	if code != 0 || !strings.Contains(errb, "not a member") {
		t.Error("off-scheme warning expected")
	}
}

func TestCapnetRuns(t *testing.T) {
	code, out, _ := runCmd(t, capnet, "-graph", "barbell", "-k", "3", "-bridges", "1", "-f", "0", "-adversary", "none")
	if code != 0 || !strings.Contains(out, "consensus: true") {
		t.Fatalf("barbell run: %d\n%s", code, out)
	}
	code, out, _ = runCmd(t, capnet, "-graph", "cycle", "-n", "5", "-f", "1", "-adversary", "targeted")
	if code != 0 || !strings.Contains(out, "solvable: true") {
		t.Fatalf("cycle run:\n%s", out)
	}
	// The cut adversary at f = c(G) breaks agreement.
	code, out, _ = runCmd(t, capnet, "-graph", "barbell", "-k", "3", "-bridges", "1", "-f", "1", "-adversary", "cut")
	if code != 0 || !strings.Contains(out, "consensus: false") {
		t.Fatalf("cut run:\n%s", out)
	}
	// Every named graph constructs.
	for _, kind := range []string{"path", "complete", "grid", "hypercube", "theta", "wheel", "star", "petersen", "tree", "random"} {
		if code, _, _ := runCmd(t, capnet, "-graph", kind, "-adversary", "none"); code != 0 {
			t.Errorf("graph %s failed", kind)
		}
	}
	// Custom topology.
	code, out, _ = runCmd(t, capnet, "-graph", "custom", "-edges", "0-1,1-2,2-0", "-f", "1")
	if code != 0 || !strings.Contains(out, "c(G)=2") {
		t.Fatalf("custom run:\n%s", out)
	}
}

func TestCapnetErrors(t *testing.T) {
	if code, _, _ := runCmd(t, capnet, "-graph", "bogus"); code != 2 {
		t.Error("unknown graph")
	}
	if code, _, _ := runCmd(t, capnet, "-graph", "custom", "-edges", "zz"); code != 2 {
		t.Error("bad edges")
	}
	if code, _, _ := runCmd(t, capnet, "-graph", "cycle", "-adversary", "bogus"); code != 2 {
		t.Error("unknown adversary")
	}
}

func TestExperimentsCLI(t *testing.T) {
	code, out, _ := runCmd(t, capexp, "-list")
	if code != 0 || !strings.Contains(out, "fig1") || !strings.Contains(out, "nproc") {
		t.Fatalf("list:\n%s", out)
	}
	code, out, _ = runCmd(t, capexp, "-run", "fig1")
	if code != 0 || !strings.Contains(out, "ww    8") {
		t.Fatalf("fig1:\n%s", out)
	}
	if code, _, _ := runCmd(t, capexp, "-run", "zzz"); code != 1 {
		t.Error("unknown experiment")
	}
	if code, _, _ := runCmd(t, capexp); code != 2 {
		t.Error("no mode is usage error")
	}
}

func TestCapsolveExplainAndDot(t *testing.T) {
	code, out, _ := runCmd(t, capsolve, "-scheme", "C1", "-explain")
	if code != 0 || !strings.Contains(out, "SOLVABLE") || !strings.Contains(out, "fair scenario") {
		t.Fatalf("explain:\n%s", out)
	}
	code, out, _ = runCmd(t, capsolve, "-scheme", "S1", "-dot")
	if code != 0 || !strings.Contains(out, "digraph") || !strings.Contains(out, "doublecircle") {
		t.Fatalf("dot:\n%s", out)
	}
}

// TestCapsolveUnIndex covers the -unindex flag: valid inversions
// (including indices past int64 at r = 41), and out-of-range or
// malformed arguments erroring cleanly instead of panicking.
func TestCapsolveUnIndex(t *testing.T) {
	// ind("..") = 4 per Figure 1: k=4 at r=2 must invert to "..".
	code, out, _ := runCmd(t, capsolve, "-unindex", "2:4")
	if code != 0 || strings.TrimSpace(out) != ".." {
		t.Fatalf("2:4 → %d %q", code, out)
	}
	code, out, _ = runCmd(t, capsolve, "-unindex", "1:0")
	if code != 0 || strings.TrimSpace(out) != "b" {
		t.Fatalf("1:0 → %d %q", code, out)
	}
	// Beyond the int64-safe bound the big-integer inverse must kick in:
	// 3^41 - 1 is the maximal index at r = 41.
	code, out, _ = runCmd(t, capsolve, "-unindex", "41:36472996377170786402")
	if code != 0 || len(strings.TrimSpace(out)) != 41 {
		t.Fatalf("r=41 max: %d %q", code, out)
	}
	for _, bad := range []string{"2:9", "2:-1", "-1:0", "2", "x:1", "2:y"} {
		if code, _, errOut := runCmd(t, capsolve, "-unindex", bad); code != 1 || errOut == "" {
			t.Errorf("-unindex %q: exit %d, stderr %q; want clean error", bad, code, errOut)
		}
	}
}

func capchaos(args []string, out, errb *bytes.Buffer) int { return Capchaos(args, out, errb) }

func TestCapchaosCleanCampaign(t *testing.T) {
	code, out, _ := runCmd(t, capchaos, "-scheme", "S1", "-executions", "200", "-seed", "5")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{"chaos campaign", "scheme=S1", "violations=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCapchaosObstruction(t *testing.T) {
	code, _, errb := runCmd(t, capchaos, "-scheme", "R1")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb, "obstruction") {
		t.Errorf("stderr should cite the obstruction: %s", errb)
	}
}

func TestCapchaosNetwork(t *testing.T) {
	code, out, _ := runCmd(t, capchaos, "-net", "-graph", "cycle", "-n", "5", "-executions", "50", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "violations=0") {
		t.Errorf("campaign not clean:\n%s", out)
	}
	// Concurrent runner variant.
	code, out, _ = runCmd(t, capchaos, "-net", "-graph", "complete", "-n", "4", "-executions", "50", "-concurrent")
	if code != 0 || !strings.Contains(out, "violations=0") {
		t.Fatalf("concurrent: exit %d\n%s", code, out)
	}
}

func TestCapchaosErrors(t *testing.T) {
	if code, _, _ := runCmd(t, capchaos, "-scheme", "nope"); code != 1 {
		t.Fatalf("unknown scheme: exit %d, want 1", code)
	}
	if code, _, _ := runCmd(t, capchaos, "-net", "-graph", "nope"); code != 2 {
		t.Fatalf("unknown graph: exit %d, want 2", code)
	}
	// A budget at the connectivity is refused, citing Theorem V.1.
	code, _, errb := runCmd(t, capchaos, "-net", "-graph", "cycle", "-n", "4", "-f", "2")
	if code != 1 || !strings.Contains(errb, "unsolvable") {
		t.Fatalf("over-budget: exit %d stderr %s", code, errb)
	}
}

// --- -timeout root contexts ------------------------------------------

// TestCapsolveTimeout: an already-expired budget aborts the bounded-round
// chain analysis instead of hanging, in both text and JSON mode.
func TestCapsolveTimeout(t *testing.T) {
	code, _, errb := runCmd(t, capsolve, "-scheme", "R1", "-horizon", "6", "-timeout", "1ns")
	if code != 1 || !strings.Contains(errb, "aborted") {
		t.Fatalf("exit %d stderr %q, want 1 + aborted", code, errb)
	}
	code, out, _ := runCmd(t, capsolve, "-scheme", "R1", "-horizon", "6", "-timeout", "1ns", "-json")
	if code != 1 || !strings.Contains(out, "chainError") {
		t.Fatalf("json: exit %d out %q, want 1 + chainError", code, out)
	}
	// Without -horizon the flag is inert: classification is pure automata
	// work and must still succeed.
	if code, _, _ := runCmd(t, capsolve, "-scheme", "S1", "-timeout", "1ns"); code != 0 {
		t.Fatalf("classification under expired budget: exit %d, want 0", code)
	}
}

func TestCapnetTimeout(t *testing.T) {
	code, _, errb := runCmd(t, capnet, "-graph", "cycle", "-n", "4", "-timeout", "1ns")
	if code != 1 || !strings.Contains(errb, "aborted") {
		t.Fatalf("exit %d stderr %q, want 1 + aborted", code, errb)
	}
	// A generous budget changes nothing about the verdict.
	code, out, _ := runCmd(t, capnet, "-graph", "cycle", "-n", "4", "-timeout", "1m")
	if code != 0 || !strings.Contains(out, "consensus: true") {
		t.Fatalf("budgeted run: exit %d\n%s", code, out)
	}
}

func TestCapchaosTimeout(t *testing.T) {
	code, out, errb := runCmd(t, capchaos, "-scheme", "S1", "-executions", "100000", "-timeout", "1ns")
	if code != 1 || !strings.Contains(errb, "aborted") {
		t.Fatalf("exit %d stderr %q, want 1 + aborted", code, errb)
	}
	// The partial report still surfaces what completed before the cut.
	if !strings.Contains(out, "executions=0") {
		t.Fatalf("partial report missing:\n%s", out)
	}
	code, _, errb = runCmd(t, capchaos, "-net", "-graph", "cycle", "-n", "4", "-executions", "100000", "-timeout", "1ns")
	if code != 1 || !strings.Contains(errb, "aborted") {
		t.Fatalf("net: exit %d stderr %q, want 1 + aborted", code, errb)
	}
}

func capserved(args []string, out, errb *bytes.Buffer) int { return Capserved(args, out, errb) }

func TestCapservedFlagErrors(t *testing.T) {
	if code, _, _ := runCmd(t, capserved, "-bogus"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	// A hopeless listen address fails fast with exit 1, not a hang.
	if code, _, errb := runCmd(t, capserved, "-addr", "256.256.256.256:1"); code != 1 || errb == "" {
		t.Fatalf("bad addr: exit %d, want 1 with error", code)
	}
}
