package cli

import (
	"bufio"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/wire"
)

// The -wire phase compares the two encodings of the SAME batch
// workload: /v1/solve/batch streamed as compact JSON lines versus
// binary verdict frames (Accept: application/x-capverdict-stream).
// Both legs run the identical warmed query population with the same
// concurrency, so the delta isolates encode/decode and bytes on the
// wire. The gates are the PR-10 bars: frames must carry at least 40%
// fewer bytes per item at equal-or-better p99, and binary items/sec
// must beat the JSON-batch baseline by the -wire-bar factor.

type wireComparison struct {
	Items     int `json:"items"`
	BatchSize int `json:"batchSize"`
	Workers   int `json:"workers"`

	JSONItemsPerSec  float64 `json:"jsonItemsPerSec"`
	JSONP50Ms        float64 `json:"jsonP50Ms"`
	JSONP99Ms        float64 `json:"jsonP99Ms"`
	JSONErrors       int     `json:"jsonErrors"`
	JSONBytesPerItem float64 `json:"jsonBytesPerItem"`

	BinaryItemsPerSec  float64 `json:"binaryItemsPerSec"`
	BinaryP50Ms        float64 `json:"binaryP50Ms"`
	BinaryP99Ms        float64 `json:"binaryP99Ms"`
	BinaryErrors       int     `json:"binaryErrors"`
	BinaryBytesPerItem float64 `json:"binaryBytesPerItem"`

	// BytesRatio is binary bytes/item over JSON bytes/item (the bar is
	// <= 1 - wire-bytes-bar savings, i.e. 0.6 for 40% fewer bytes);
	// SpeedupX is binary items/sec over JSON items/sec.
	BytesRatio float64 `json:"bytesRatio"`
	SpeedupX   float64 `json:"speedupX"`

	WireBar      float64 `json:"wireBar,omitempty"`
	WireBytesBar float64 `json:"wireBytesBar,omitempty"`
	WireOK       *bool   `json:"wireOk,omitempty"`
}

func (b *bench) runWireComparison(ctx context.Context, items, batchSize, workers int, rng *rand.Rand) wireComparison {
	cmp := wireComparison{Items: items, BatchSize: batchSize, Workers: workers}
	queries := b.buildBatchQueries(items, rng)

	// Warm every distinct query: both legs must measure the cached-hit
	// serving path, where encoding is a visible fraction of the work.
	seen := map[string]bool{}
	for _, q := range queries {
		if !seen[q] {
			seen[q] = true
			b.one(ctx, "warm", "/v1/solvable", q)
		}
	}
	var groups []string
	for at := 0; at < len(queries); at += batchSize {
		end := min(at+batchSize, len(queries))
		groups = append(groups, `{"items":[`+strings.Join(queries[at:end], ",")+`]}`)
	}

	jsonMs, jsonWall, jsonErrs, jsonBytes := b.wireLeg(ctx, groups, workers, false)
	cmp.JSONP50Ms, _, cmp.JSONP99Ms, _ = percentiles(jsonMs)
	cmp.JSONErrors = jsonErrs
	if jsonWall > 0 {
		cmp.JSONItemsPerSec = float64(len(jsonMs)) / jsonWall.Seconds()
	}
	if len(jsonMs) > 0 {
		cmp.JSONBytesPerItem = float64(jsonBytes) / float64(len(jsonMs))
	}

	binMs, binWall, binErrs, binBytes := b.wireLeg(ctx, groups, workers, true)
	cmp.BinaryP50Ms, _, cmp.BinaryP99Ms, _ = percentiles(binMs)
	cmp.BinaryErrors = binErrs
	if binWall > 0 {
		cmp.BinaryItemsPerSec = float64(len(binMs)) / binWall.Seconds()
	}
	if len(binMs) > 0 {
		cmp.BinaryBytesPerItem = float64(binBytes) / float64(len(binMs))
	}

	if cmp.JSONBytesPerItem > 0 {
		cmp.BytesRatio = cmp.BinaryBytesPerItem / cmp.JSONBytesPerItem
	}
	if cmp.JSONItemsPerSec > 0 {
		cmp.SpeedupX = cmp.BinaryItemsPerSec / cmp.JSONItemsPerSec
	}
	return cmp
}

// wireLeg drives every batch group from `workers` closed-loop workers
// in one encoding, returning per-item latencies, wall time, error
// lines, and total response-body bytes.
func (b *bench) wireLeg(ctx context.Context, groups []string, workers int, binary bool) (ms []float64, wall time.Duration, errs int, bytes int64) {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		wg      sync.WaitGroup
		errsN   atomic.Int64
		bytesN  atomic.Int64
		samples []float64
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= len(groups) || ctx.Err() != nil {
					return
				}
				sent := time.Now()
				lineMs, lineErrs, n := b.oneWireBatch(ctx, groups[g], sent, binary)
				errsN.Add(int64(lineErrs))
				bytesN.Add(n)
				mu.Lock()
				samples = append(samples, lineMs...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return samples, time.Since(start), int(errsN.Load()), bytesN.Load()
}

// countingReader tallies how many response bytes actually crossed the
// wire for one batch reply.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// oneWireBatch sends one batch request in the chosen encoding and times
// each streamed line against the batch send time.
func (b *bench) oneWireBatch(ctx context.Context, body string, sent time.Time, binary bool) (lineMs []float64, errs int, bytes int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/solve/batch", strings.NewReader(body))
	if err != nil {
		return nil, 1, 0
	}
	req.Header.Set("Content-Type", "application/json")
	if binary {
		req.Header.Set("Accept", wire.AcceptVerdictStream)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, 1, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 1, 0
	}
	cr := &countingReader{r: resp.Body}
	if binary {
		if !strings.Contains(resp.Header.Get("Content-Type"), wire.MediaTypeVerdictStream) {
			io.Copy(io.Discard, resp.Body)
			return nil, 1, 0 // server did not negotiate frames: the leg is invalid
		}
		sc := wire.NewFrameScanner(cr, 8<<20)
		for {
			kind, payload, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil || kind != wire.KindBatchLine {
				errs++
				break
			}
			lineMs = append(lineMs, float64(time.Since(sent))/float64(time.Millisecond))
			line, err := wire.DecodeBatchLine(payload)
			if err != nil || line.Status != http.StatusOK {
				errs++
			}
		}
		return lineMs, errs, cr.n
	}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 0, 1<<16), 8<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		lineMs = append(lineMs, float64(time.Since(sent))/float64(time.Millisecond))
		if !strings.Contains(sc.Text(), `"status":200`) {
			errs++
		}
	}
	if sc.Err() != nil {
		errs++
	}
	return lineMs, errs, cr.n
}
