// Package cli implements the logic of the repository's command-line tools
// (capsolve, capsim, capnet, experiments) as testable functions: each
// takes an argument vector and output writers and returns a process exit
// code. The cmd/ mains are one-line wrappers.
package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"strconv"
	"strings"
	"time"

	coordattack "repro"
)

// rootContext builds the process-level context for a CLI invocation: the
// background context, bounded by -timeout when one was given. The cancel
// func is always non-nil.
func rootContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

type sliceFlag []string

func (m *sliceFlag) String() string { return strings.Join(*m, ",") }
func (m *sliceFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// Capsolve classifies an omission scheme (Theorem III.8) and prints the
// verdict, optionally with the bounded-horizon chain analysis and JSON
// output.
func Capsolve(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("scheme", "", "named scheme (see -list)")
	expr := fs.String("expr", "", `scheme expression, e.g. "[.w]^w | [.b]^w" or "R1 \ {w(b)} \ {.(b)}"`)
	list := fs.Bool("list", false, "list named schemes")
	jsonOut := fs.Bool("json", false, "emit the verdict as JSON")
	explain := fs.Bool("explain", false, "append a prose explanation of the verdict")
	dot := fs.Bool("dot", false, "print the scheme's Büchi automaton in Graphviz DOT format and exit")
	horizon := fs.Int("horizon", 0, "also run the bounded-round (chain) analysis up to this horizon — works for double-omission schemes too")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the bounded-round analysis (0 = none)")
	stats := fs.Bool("stats", false, "print engine instrumentation for the bounded-round analysis")
	backend := fs.String("backend", "auto", "analysis backend for the bounded-round analysis: auto|symbolic|enumerate")
	unindex := fs.String("unindex", "", `invert the index bijection: "r:k" prints the unique word of Γ^r with ind = k`)
	var minus sliceFlag
	fs.Var(&minus, "minus", "remove an ultimately periodic scenario 'u(v)' (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *unindex != "" {
		w, err := parseUnIndex(*unindex)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, w)
		return 0
	}
	if *list {
		for _, n := range coordattack.SchemeNames() {
			s, _ := coordattack.SchemeByName(n)
			fmt.Fprintf(stdout, "%-11s %s\n", n, s.Description())
		}
		return 0
	}
	if *name == "" && *expr == "" {
		fs.Usage()
		return 2
	}
	var s *coordattack.Scheme
	var err error
	if *expr != "" {
		s, err = coordattack.ParseScheme(*expr)
	} else {
		s, err = coordattack.SchemeByName(*name)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(minus) > 0 {
		scs := make([]coordattack.Scenario, len(minus))
		for i, m := range minus {
			sc, err := coordattack.ParseScenario(m)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			scs[i] = sc
		}
		s = coordattack.MinusScenarios(s.Name()+"-custom", s, scs...)
	}

	if *dot {
		fmt.Fprint(stdout, coordattack.SchemeDOT(s))
		return 0
	}

	v, err := coordattack.Classify(s)

	// The bounded-round chain analysis is the only open-ended computation
	// here; it runs under the -timeout root context so a huge horizon on a
	// hostile scheme cannot hang the tool.
	var chainHorizon *int
	var chainErr error
	var chainStats coordattack.EngineStats
	if *horizon > 0 {
		eng, berr := engineOptions(*backend)
		if berr != nil {
			fmt.Fprintln(stderr, berr)
			return 2
		}
		ctx, cancel := rootContext(*timeout)
		rep, cerr := coordattack.Analyze(ctx, coordattack.RoundsRequest{
			Scheme: s, Horizon: *horizon, MinRounds: true, VerdictOnly: true,
			Engine: eng,
		})
		cancel()
		chainErr = cerr
		if cerr == nil && rep.Found {
			p := rep.Rounds
			chainHorizon = &p
		}
		chainStats = rep.Stats
	}

	if *jsonOut {
		var js *coordattack.EngineStats
		if *stats && *horizon > 0 {
			js = &chainStats
		}
		return emitJSON(stdout, stderr, s, v, err, *horizon, chainHorizon, chainErr, js)
	}
	fmt.Fprintf(stdout, "scheme:      %s (%s)\n", s.Name(), s.Description())
	if err != nil {
		fmt.Fprintf(stdout, "note:        %v\n", err)
	}
	if *horizon > 0 {
		if chainErr != nil {
			fmt.Fprintf(stderr, "capsolve: chain analysis aborted: %v\n", chainErr)
			return 1
		}
		if chainHorizon != nil {
			fmt.Fprintf(stdout, "chain:       bounded-round solvable from horizon %d\n", *chainHorizon)
		} else {
			fmt.Fprintf(stdout, "chain:       not bounded-round solvable up to horizon %d\n", *horizon)
		}
		if *stats {
			fmt.Fprintf(stdout, "engine:      %s\n", formatEngineStats(chainStats))
		}
	}
	if v == nil {
		return 1
	}
	if err != nil {
		fmt.Fprintf(stdout, "solvable:    undecided by Theorem III.8 (use -horizon for the bounded analysis)\n")
		return 0
	}
	fmt.Fprintf(stdout, "solvable:    %v\n", v.Solvable)
	fmt.Fprintf(stdout, "conditions:  (i) fair missing=%v  (ii) pair missing=%v  (iii) (w)^ω missing=%v  (iv) (b)^ω missing=%v\n",
		v.FairMissing, v.PairMissing, v.WOmegaMissing, v.BOmegaMissing)
	if v.HasWitness {
		fmt.Fprintf(stdout, "witness:     %s   [%s]\n", v.Witness, v.WitnessCondition)
	}
	if v.PairMissing {
		fmt.Fprintf(stdout, "pair:        (%s, %s)\n", v.Pair[0], v.Pair[1])
	}
	if v.MinRounds == coordattack.Unbounded {
		fmt.Fprintf(stdout, "rounds:      unbounded (Pref(L) = Γ*)\n")
	} else {
		fmt.Fprintf(stdout, "rounds:      exactly %d (witness word %s)\n", v.MinRounds, v.MinRoundsWitness)
	}
	if *explain {
		fmt.Fprintf(stdout, "\n%s", coordattack.ExplainVerdict(v))
	}
	return 0
}

// parseUnIndex parses the -unindex argument "r:k" (k may exceed int64;
// the big-integer inverse is used) and inverts the index bijection.
// Out-of-range input surfaces as an error, never a panic.
func parseUnIndex(arg string) (coordattack.Word, error) {
	rStr, kStr, ok := strings.Cut(arg, ":")
	if !ok {
		return nil, fmt.Errorf("capsolve: -unindex wants \"r:k\", got %q", arg)
	}
	r, err := strconv.Atoi(strings.TrimSpace(rStr))
	if err != nil {
		return nil, fmt.Errorf("capsolve: -unindex length %q: %v", rStr, err)
	}
	k, ok := new(big.Int).SetString(strings.TrimSpace(kStr), 10)
	if !ok {
		return nil, fmt.Errorf("capsolve: -unindex index %q is not an integer", kStr)
	}
	return coordattack.UnIndexChecked(r, k)
}

// jsonVerdict is the serializable verdict shape.
type jsonVerdict struct {
	Scheme        string                   `json:"scheme"`
	Description   string                   `json:"description"`
	Complete      bool                     `json:"complete"`
	Solvable      *bool                    `json:"solvable,omitempty"`
	Conditions    map[string]bool          `json:"conditions,omitempty"`
	Witness       *coordattack.Scenario    `json:"witness,omitempty"`
	Pair          []coordattack.Scenario   `json:"pair,omitempty"`
	MinRounds     *int                     `json:"minRounds,omitempty"`
	ChainHorizon  *int                     `json:"chainFirstSolvableHorizon,omitempty"`
	ChainSearched int                      `json:"chainHorizonSearched,omitempty"`
	ChainError    string                   `json:"chainError,omitempty"`
	EngineStats   *coordattack.EngineStats `json:"engineStats,omitempty"`
	Note          string                   `json:"note,omitempty"`
}

func emitJSON(stdout, stderr io.Writer, s *coordattack.Scheme, v *coordattack.Verdict, classifyErr error, horizon int, chainHorizon *int, chainErr error, engineStats *coordattack.EngineStats) int {
	out := jsonVerdict{Scheme: s.Name(), Description: s.Description()}
	if classifyErr != nil {
		out.Note = classifyErr.Error()
	}
	if v != nil {
		out.Complete = v.Complete
		if classifyErr == nil {
			sv := v.Solvable
			out.Solvable = &sv
			out.Conditions = map[string]bool{
				"fairMissing":   v.FairMissing,
				"pairMissing":   v.PairMissing,
				"wOmegaMissing": v.WOmegaMissing,
				"bOmegaMissing": v.BOmegaMissing,
			}
			if v.HasWitness {
				w := v.Witness
				out.Witness = &w
			}
			if v.PairMissing {
				out.Pair = []coordattack.Scenario{v.Pair[0], v.Pair[1]}
			}
			if v.MinRounds != coordattack.Unbounded {
				mr := v.MinRounds
				out.MinRounds = &mr
			}
		}
	}
	if horizon > 0 {
		out.ChainSearched = horizon
		out.ChainHorizon = chainHorizon
		out.EngineStats = engineStats
		if chainErr != nil {
			out.ChainError = chainErr.Error()
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if chainErr != nil {
		return 1
	}
	return 0
}
