package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	coordattack "repro"
	"repro/internal/chaos"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
)

// Capchaos runs seeded chaos campaigns against the simulation kernels:
// either a two-process campaign (A_w on a named scheme, every trace
// checked by the consensus and Proposition III.12 watchdogs) or, with
// -net, a network campaign (flooding on a graph under random
// budget-respecting fault injectors).
func Capchaos(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("scheme", "S1", "named scheme for the two-process campaign")
	executions := fs.Int("executions", 1000, "number of seeded executions")
	seed := fs.Int64("seed", 1, "campaign master seed")
	maxRounds := fs.Int("max-rounds", 200, "round cap per execution")
	maxPrefix := fs.Int("max-prefix", 8, "sampled scenario prefix bound")
	deadline := fs.Duration("deadline", 10*time.Second, "wall-clock budget per execution (0 = none)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole campaign (0 = none)")
	noInvariant := fs.Bool("no-invariant", false, "skip the Proposition III.12 invariant watchdog")
	noShrink := fs.Bool("no-shrink", false, "skip counterexample minimization")
	maxViolations := fs.Int("max-violations", 8, "stop after this many violations")
	net := fs.Bool("net", false, "run a network campaign instead (flooding under fault injectors)")
	graphKind := fs.String("graph", "complete", "network graph: complete|cycle|petersen|barbell")
	n := fs.Int("n", 4, "network graph size")
	f := fs.Int("f", 0, "losses-per-round budget (default c(G)−1)")
	concurrent := fs.Bool("concurrent", false, "use the goroutine/CSP network runner")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The root context bounds the entire campaign; the per-execution
	// -deadline nests inside it. Cancellation is honored between seeded
	// executions, so an interrupted campaign still reports the executions
	// it finished.
	ctx, cancel := rootContext(*timeout)
	defer cancel()

	if *net {
		return capchaosNet(ctx, *graphKind, *n, *f, *executions, *seed, *maxRounds, *deadline, *concurrent, *maxViolations, stdout, stderr)
	}

	s, err := coordattack.SchemeByName(*name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	algo, err := chaos.AWForScheme(s)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep, err := chaos.RunCampaignCtx(ctx, chaos.Config{
		Scheme:         s,
		Algo:           algo,
		Executions:     *executions,
		Seed:           *seed,
		MaxPrefix:      *maxPrefix,
		MaxRounds:      *maxRounds,
		Deadline:       *deadline,
		CheckInvariant: !*noInvariant,
		NoShrink:       *noShrink,
		MaxViolations:  *maxViolations,
	})
	if err != nil {
		if rep != nil {
			fmt.Fprintln(stdout, rep)
		}
		fmt.Fprintf(stderr, "capchaos: campaign aborted: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, rep)
	if !rep.OK() {
		return 1
	}
	return 0
}

func capchaosNet(ctx context.Context, kind string, n, f, executions int, seed int64, maxRounds int, deadline time.Duration, concurrent bool, maxViolations int, stdout, stderr io.Writer) int {
	var g *coordattack.Graph
	switch kind {
	case "complete":
		g = coordattack.Complete(n)
	case "cycle":
		g = coordattack.Cycle(n)
	case "petersen":
		g = coordattack.Petersen()
	case "barbell":
		g = coordattack.Barbell(n, 2)
	default:
		fmt.Fprintf(stderr, "unknown graph %q (complete|cycle|petersen|barbell)\n", kind)
		return 2
	}
	rep, err := chaos.RunNetworkCampaignCtx(ctx, chaos.NetConfig{
		Graph: g,
		NewNodes: func() []netsim.Node {
			nodes := make([]netsim.Node, g.N())
			for i := range nodes {
				nodes[i] = &netconsensus.FloodMin{}
			}
			return nodes
		},
		Executions:        executions,
		Seed:              seed,
		MaxLossesPerRound: f,
		MaxRounds:         maxRounds,
		Deadline:          deadline,
		Goroutines:        concurrent,
		MaxViolations:     maxViolations,
	})
	if err != nil {
		if rep != nil {
			fmt.Fprintln(stdout, rep)
		}
		fmt.Fprintf(stderr, "capchaos: campaign aborted: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, rep)
	if !rep.OK() {
		return 1
	}
	return 0
}
