package experiments

import (
	"strings"
	"testing"
)

// TestRegistry checks the registry shape and paper ordering.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != len(paperOrder) {
		t.Fatalf("%d experiments, %d in paper order", len(all), len(paperOrder))
	}
	for i, e := range all {
		if e.Name != paperOrder[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, e.Name, paperOrder[i])
		}
		if e.Paper == "" {
			t.Errorf("%s: empty paper pointer", e.Name)
		}
	}
	if _, err := ByName("fig1"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("zzz"); err == nil {
		t.Error("unknown experiment must error")
	}
	names := Names()
	if len(names) != len(all) || names[0] != "fig1" {
		t.Error("Names()")
	}
}

// TestExperimentsReproducePaper runs each experiment and pins the
// substantive markers of the paper's results in the reports.
func TestExperimentsReproducePaper(t *testing.T) {
	expect := map[string][]string{
		"fig1":       {"bb    0", "ww    8", ".w    3", "wb    6"},
		"index":      {"19683", "bijective"},
		"envs":       {"S0", "obstruction", "III.8.i: fair scenario ∉ L", "∞"},
		"thm38":      {"60/60", "37/37"},
		"prop312":    {"invariant/property violations  0"},
		"rounds":     {"S1      2                2               true"},
		"almostfair": {"4372"},
		"minimal":    {"80/80 pairs have lower out / upper in", "L_2     true         true"},
		"chains":     {"2187   true         false"},
		"network":    {"barbell-4-2  8   14  3    2     true            true             2..2"},
		"gammac":     {"30/30 identical decision profiles", "network replay violates consensus: true", "30/30 runs reach consensus"},
		"budget":     {"3  true      III.8.iii: (w)^ω ∉ L     4          4                true"},
		"beyond":     {"BX2", "never (≤6)", "ΣK2"},
		"growth":     {"65536", "2187", "511"},
		"early":      {"8                                           9              10"},
		"nproc":      {"beats flooding", "none ≤ 4", "matches the flooding bound", "star-4   1     0  1"},
		// 724 transitions for K_4 at horizon 5: the streaming engine's
		// transition table holds only real view transitions (the legacy
		// interner also counted the two initial pseudo-views, giving 726).
		"msgsize":  {"23              23              23.8", "724               968"},
		"dist":     {"S1          2    2    2    2    2.00"},
		"ho":       {"Γ^ω (equivalence verified: true)", "obstruction"},
		"floodlat": {"cycle-8      8  2     1  7                         7"},
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			out := e.Run()
			if out == "" {
				t.Fatal("empty report")
			}
			for _, marker := range expect[e.Name] {
				if !strings.Contains(out, marker) {
					t.Errorf("%s: missing marker %q in report:\n%s", e.Name, marker, out)
				}
			}
			// Determinism: a second run yields the identical report.
			if e.Run() != out {
				t.Errorf("%s: report not deterministic", e.Name)
			}
		})
	}
}
