package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func init() {
	register("budget", "Extension: total-loss budgets — the classic f+1 bound from Cor. III.14", budget)
	register("beyond", "Extension: double-omission schemes (outside Theorem III.8) via chain analysis + synthesis", beyond)
	register("growth", "Extension: prefix-language growth |Pref(L) ∩ Γ^r| per scheme", growth)
	register("early", "Extension: A_w decision-round profile (early-deciding behaviour)", early)
}

// budget reproduces the classic "f failures ⇒ f+1 rounds" bound as an
// instance of Corollary III.14: with at most k messages lost in total,
// MinRounds = k+1, achieved by the bounded A_w.
func budget() string {
	var b strings.Builder
	b.WriteString(header("Total-loss budgets K_k — MinRounds = k+1 (the f+1 bound)"))
	rows := [][]string{{"k", "solvable", "condition", "MinRounds", "worst A_w round", "consensus"}}
	for k := 0; k <= 3; k++ {
		s := scheme.AtMostKLosses(k)
		res, err := classify.Classify(s)
		if err != nil {
			continue
		}
		witness := consensus.BoundedWitness(res.MinRoundsWitness)
		worst, allOK := 0, true
		for _, prefix := range s.AllPrefixes(res.MinRounds) {
			sc, ok := s.ExtendToScenario(prefix)
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				w := consensus.NewBoundedAW(witness, res.MinRounds)
				bl := consensus.NewBoundedAW(witness, res.MinRounds)
				tr := sim.RunScenario(w, bl, inputs, sc, res.MinRounds+3)
				if !sim.Check(tr).OK() {
					allOK = false
				}
				for _, dr := range tr.DecisionRound {
					if dr > worst {
						worst = dr
					}
				}
			}
		}
		rows = append(rows, []string{fmt.Sprint(k), fmt.Sprint(res.Solvable), res.WitnessCondition.String(),
			fmt.Sprint(res.MinRounds), fmt.Sprint(worst), fmt.Sprint(allOK)})
	}
	b.WriteString(table(rows))
	return b.String()
}

// beyond exercises schemes with double omissions — the regime the paper
// leaves for future work — using the alphabet-agnostic chain analysis and
// the synthesized algorithms.
func beyond() string {
	var b strings.Builder
	b.WriteString(header("Beyond Γ — double-omission schemes, decided per horizon"))
	rows := [][]string{{"scheme", "description", "first solvable horizon (≤6)", "synthesized algorithm verified"}}
	type entry struct {
		s      *scheme.Scheme
		expect int // -1 = never
	}
	entries := []entry{
		{scheme.BlackoutBudget(0), 1},
		{scheme.BlackoutBudget(1), 2},
		{scheme.BlackoutBudget(2), 3},
		{scheme.SigmaAtMostKLostMessages(1), 2},
		{scheme.SigmaAtMostKLostMessages(2), 3},
		{scheme.S2(), -1},
	}
	for _, e := range entries {
		horizon := "never (≤6)"
		verified := "-"
		if p, ok := chainMinRounds(e.s, 6); ok {
			horizon = fmt.Sprint(p)
			white, black, ok := chain.Synthesize(e.s, p)
			if ok {
				good := true
				for _, prefix := range e.s.AllPrefixes(p) {
					sc, okx := e.s.ExtendToScenario(prefix)
					if !okx {
						continue
					}
					for _, inputs := range sim.AllInputs() {
						tr := sim.RunScenario(white, black, inputs, sc, p+2)
						if !sim.Check(tr).OK() {
							good = false
						}
					}
				}
				verified = fmt.Sprint(good)
			}
		}
		rows = append(rows, []string{e.s.Name(), e.s.Description(), horizon, verified})
	}
	b.WriteString(table(rows))
	b.WriteString("\nBlackout channels (., x only) are solvable in k+1 rounds because a reception is\ncommon knowledge; FirstCleanExchange realizes the bound (see consensus tests).\n")
	return b.String()
}

// growth tabulates |Pref(L) ∩ Γ^r| — how constrained each environment is.
func growth() string {
	var b strings.Builder
	b.WriteString(header("Prefix-language growth |Pref(L) ∩ alphabet^r|"))
	schemes := []*scheme.Scheme{
		scheme.S0(), scheme.TWhite(), scheme.C1(), scheme.S1(),
		scheme.AtMostKLosses(1), scheme.AtMostKLosses(2),
		scheme.R1(), scheme.Fair(), scheme.AlmostFair(),
		scheme.BlackoutBudget(1), scheme.S2(),
	}
	head := []string{"scheme"}
	for r := 0; r <= 8; r++ {
		head = append(head, fmt.Sprintf("r=%d", r))
	}
	rows := [][]string{head}
	for _, s := range schemes {
		row := []string{s.Name()}
		for r := 0; r <= 8; r++ {
			row = append(row, s.CountPrefixes(r).String())
		}
		rows = append(rows, row)
	}
	b.WriteString(table(rows))
	b.WriteString("\nclosed forms verified by tests: C1 = 2r+1, S1 = 2^(r+1)−1, R1/Fair/AlmostFair = 3^r, S2 = 4^r.\n")
	return b.String()
}

// early profiles A_w's decision round on the almost-fair scheme as a
// function of how long the adversary tracks the excluded scenario: the
// algorithm is early-deciding — it stops two rounds after the scenario
// leaves (b)^ω.
func early() string {
	var b strings.Builder
	b.WriteString(header("A_{b^ω} early-decision profile on Γ^ω \\ {(b)^ω}"))
	witness := omission.MustScenario("(b)")
	rows := [][]string{{"tracking rounds j (scenario b^j then fair)", "white decides", "black decides"}}
	for j := 0; j <= 8; j++ {
		sc := omission.UPWord(omission.Uniform(omission.LossBlack, j), omission.MustWord("."))
		tr := sim.RunScenario(consensus.NewAW(witness), consensus.NewAW(witness), [2]sim.Value{0, 1}, sc, j+20)
		rows = append(rows, []string{fmt.Sprint(j), fmt.Sprint(tr.DecisionRound[0]), fmt.Sprint(tr.DecisionRound[1])})
	}
	b.WriteString(table(rows))
	b.WriteString("\nshape: decisions land within two rounds of the first deviation from the\nexcluded scenario — the early-stopping behaviour sketched in Section III-F.\n")
	return b.String()
}
