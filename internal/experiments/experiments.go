// Package experiments regenerates every figure- and table-like result of
// Fevat & Godard (IPDPS 2011) as printable reports. Each experiment is a
// named function returning a self-contained text block; cmd/experiments
// prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is a named, self-contained reproduction unit.
type Experiment struct {
	// Name is the registry key (e.g. "fig1").
	Name string
	// Paper points at the figure/table/theorem being reproduced.
	Paper string
	// Run produces the report; it must be deterministic.
	Run func() string
}

var registry []Experiment

func register(name, paper string, run func() string) {
	registry = append(registry, Experiment{Name: name, Paper: paper, Run: run})
}

// paperOrder fixes the presentation order (init order across files is
// alphabetical by file name, not paper order).
var paperOrder = []string{
	"fig1", "index", "envs", "thm38", "prop312", "rounds",
	"almostfair", "minimal", "chains", "network", "gammac",
	// Extensions beyond the paper's published results.
	"budget", "beyond", "growth", "early", "nproc", "msgsize", "dist", "ho", "floodlat",
}

// All returns the experiments in paper order (any unlisted experiments
// follow in registration order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	used := map[string]bool{}
	for _, name := range paperOrder {
		for _, e := range registry {
			if e.Name == name {
				out = append(out, e)
				used[name] = true
			}
		}
	}
	for _, e := range registry {
		if !used[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// Names lists the experiment names in paper order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// ByName looks up one experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	sorted := append([]string(nil), Names()...)
	sort.Strings(sorted)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", name, strings.Join(sorted, ", "))
}

// header formats a report title.
func header(e string) string {
	line := strings.Repeat("=", len(e))
	return fmt.Sprintf("%s\n%s\n", e, line)
}

// table renders rows with aligned columns.
func table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := range r {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
