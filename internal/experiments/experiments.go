// Package experiments regenerates every figure- and table-like result of
// Fevat & Godard (IPDPS 2011) as printable reports. Each experiment is a
// named function returning a self-contained text block; cmd/experiments
// prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/chain"
	"repro/internal/fullinfo"
	"repro/internal/nchain"
	"repro/internal/scheme"
)

// Experiment is a named, self-contained reproduction unit.
type Experiment struct {
	// Name is the registry key (e.g. "fig1").
	Name string
	// Paper points at the figure/table/theorem being reproduced.
	Paper string
	// Run produces the report; it must be deterministic.
	Run func() string
}

var registry []Experiment

func register(name, paper string, run func() string) {
	registry = append(registry, Experiment{Name: name, Paper: paper, Run: run})
}

// paperOrder fixes the presentation order (init order across files is
// alphabetical by file name, not paper order).
var paperOrder = []string{
	"fig1", "index", "envs", "thm38", "prop312", "rounds",
	"almostfair", "minimal", "chains", "network", "gammac",
	// Extensions beyond the paper's published results.
	"budget", "beyond", "growth", "early", "nproc", "msgsize", "dist", "ho", "floodlat",
}

// All returns the experiments in paper order (any unlisted experiments
// follow in registration order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	used := map[string]bool{}
	for _, name := range paperOrder {
		for _, e := range registry {
			if e.Name == name {
				out = append(out, e)
				used[name] = true
			}
		}
	}
	for _, e := range registry {
		if !used[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// Names lists the experiment names in paper order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// ByName looks up one experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	sorted := append([]string(nil), Names()...)
	sort.Strings(sorted)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", name, strings.Join(sorted, ", "))
}

// statsMu guards statsAgg, the engine instrumentation accumulated across
// every analysis the experiments in this process have run; the
// experiments CLI's -stats flag prints it after the reports.
var (
	statsMu  sync.Mutex
	statsAgg fullinfo.Stats
)

func observeStats(st fullinfo.Stats) {
	statsMu.Lock()
	statsAgg.Merge(st)
	statsMu.Unlock()
}

// EngineStats snapshots the aggregated engine instrumentation.
func EngineStats() fullinfo.Stats {
	statsMu.Lock()
	defer statsMu.Unlock()
	return statsAgg
}

// Engine helpers: experiments run unbounded (reports must complete), so
// every analysis goes through the unified entry points with a background
// context. Engine errors here can only be programming errors — panic.

// chainSolvableAt reports r-round solvability for a two-process scheme.
func chainSolvableAt(s *scheme.Scheme, r int) bool {
	rep, err := chain.Analyze(context.Background(),
		chain.Request{Scheme: s, Horizon: r, VerdictOnly: true, Observer: observeStats})
	if err != nil {
		panic(err)
	}
	return rep.Solvable
}

// chainMinRounds searches the smallest solvable horizon ≤ maxR.
func chainMinRounds(s *scheme.Scheme, maxR int) (int, bool) {
	rep, err := chain.Analyze(context.Background(),
		chain.Request{Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true, Observer: observeStats})
	if err != nil {
		panic(err)
	}
	return rep.Rounds, rep.Found
}

// netMinRounds searches the smallest solvable horizon ≤ maxR for an
// n-process request (K_n when req.Graph is nil).
func netMinRounds(req nchain.Request, maxR int) (int, bool) {
	req.Horizon = maxR
	req.MinRounds = true
	req.VerdictOnly = true
	req.Observer = observeStats
	rep, err := nchain.Analyze(context.Background(), req)
	if err != nil {
		panic(err)
	}
	return rep.Rounds, rep.Found
}

// header formats a report title.
func header(e string) string {
	line := strings.Repeat("=", len(e))
	return fmt.Sprintf("%s\n%s\n", e, line)
}

// table renders rows with aligned columns.
func table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := range r {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
