package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/graph"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
)

func init() {
	register("floodlat", "Performance figure: flooding dissemination latency vs loss budget", floodLatency)
}

// floodLatency measures how many rounds flooding needs before every node
// knows every origin, as the per-round loss budget f approaches the
// Theorem V.1 threshold c(G). The n−1 bound is the worst case; real
// latency degrades gracefully with f and jumps to ∞ at f = c(G) under the
// cut adversary.
func floodLatency() string {
	var b strings.Builder
	b.WriteString(header("Flooding full-dissemination latency by loss budget"))
	rows := [][]string{{"graph", "n", "c(G)", "f", "worst latency (20 seeds)", "n−1 bound"}}
	for _, g := range []*graph.Graph{graph.Cycle(8), graph.Hypercube(3), graph.Barbell(4, 2), graph.Grid(3, 3)} {
		c := g.EdgeConnectivity()
		cut, _ := g.MinCut()
		for f := 0; f < c; f++ {
			worst := 0
			for seed := int64(0); seed < 20; seed++ {
				factories := []func() netsim.Adversary{
					func() netsim.Adversary { return netsim.RandomF{F: f, Rng: rand.New(rand.NewSource(seed))} },
					func() netsim.Adversary { return netsim.TargetedCut{Cut: cut, F: f} },
				}
				for _, mk := range factories {
					if lat := disseminationLatency(g, mk); lat > worst {
						worst = lat
					}
				}
			}
			rows = append(rows, []string{g.Name(), fmt.Sprint(g.N()), fmt.Sprint(c),
				fmt.Sprint(f), fmt.Sprint(worst), fmt.Sprint(g.N() - 1)})
		}
	}
	b.WriteString(table(rows))
	b.WriteString("\nshape: latency stays well under the n−1 worst-case bound for small f and\nnever exceeds it below the threshold; at f = c(G) the cut adversary makes\ndissemination impossible (see the 'network' experiment).\n")
	return b.String()
}

// disseminationLatency returns the first horizon at which every node
// knows all n origins, replaying flooding with a fresh (identically
// seeded) adversary per horizon.
func disseminationLatency(g *graph.Graph, mkAdv func() netsim.Adversary) int {
	in := make([]netsim.Value, g.N())
	for horizon := 1; horizon < g.N(); horizon++ {
		nodes := netconsensus.NewFloodNodes(g)
		netsim.Run(g, nodes, in, mkAdv(), horizon)
		full := true
		for _, nd := range nodes {
			if nd.(*netconsensus.FloodMin).Known() != g.N() {
				full = false
				break
			}
		}
		if full {
			return horizon
		}
	}
	return g.N() - 1
}
