package experiments

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/nchain"
)

func init() {
	register("nproc", "Extension: n processes on K_n with f losses/round — the future-work direction", nproc)
}

// nproc runs the n-process full-information analysis on complete graphs:
// the Theorem V.1 threshold specializes to f < n−1, and the analysis also
// produces the exact bounded horizons (not stated in the paper).
func nproc() string {
	var b strings.Builder
	b.WriteString(header("n processes on K_n, at most f losses per round"))
	rows := [][]string{{"n", "f", "Thm V.1 solvable (f < n−1)", "first solvable horizon", "note"}}
	cases := []struct {
		n, f, maxR int
		note       string
	}{
		{2, 0, 3, "S0"},
		{2, 1, 4, "the Coordinated Attack obstruction Γ^ω"},
		{3, 0, 2, ""},
		{3, 1, 3, "matches the flooding bound n−1"},
		{3, 2, 3, "f = c(K_3)"},
		{4, 1, 2, "beats flooding's n−1 = 3"},
	}
	for _, c := range cases {
		horizon := fmt.Sprintf("none ≤ %d", c.maxR)
		if p, ok := netMinRounds(nchain.Request{N: c.n, F: c.f}, c.maxR); ok {
			horizon = fmt.Sprint(p)
		}
		rows = append(rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.f),
			fmt.Sprint(nchain.Threshold(c.n, c.f)), horizon, c.note,
		})
	}
	b.WriteString(table(rows))
	b.WriteString("\nthe horizons are exact (exhaustive full-information analysis); unsolvable rows\nstay unsolvable at every horizon by Theorem V.1.\n")

	// Arbitrary small topologies: the strongest Theorem V.1 validation —
	// quantifying over ALL algorithms, not just flooding.
	b.WriteString("\narbitrary topologies (exhaustive over all algorithms):\n")
	rows = [][]string{{"graph", "c(G)", "f", "first solvable horizon", "flooding bound n−1"}}
	for _, g := range []*graph.Graph{graph.Path(3), graph.Cycle(3), graph.Path(4), graph.Star(4), graph.Cycle(4)} {
		conn := g.EdgeConnectivity()
		for f := 0; f <= conn; f++ {
			horizon := "none (Thm V.1: never)"
			maxR := g.N() - 1
			if g.N() >= 4 && f >= 1 {
				maxR = 3 // keep the 4-node enumerations modest
			}
			if p, ok := netMinRounds(nchain.Request{Graph: g, F: f}, maxR); ok {
				horizon = fmt.Sprint(p)
			}
			rows = append(rows, []string{g.Name(), fmt.Sprint(conn), fmt.Sprint(f), horizon, fmt.Sprint(g.N() - 1)})
		}
	}
	b.WriteString(table(rows))
	b.WriteString("\nnote the sub-flooding horizons (star-4 at f=0 solves in 1 round, not n−1 = 3).\n")
	return b.String()
}
