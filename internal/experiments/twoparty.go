package experiments

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"repro/internal/chain"
	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func init() {
	register("fig1", "Figure 1: index table for words of length ≤ 2", fig1)
	register("index", "Lemma III.2 / III.4: bijection and adjacency structure", indexReport)
	register("envs", "Section II-A2 + IV-A: the seven environments", envs)
	register("thm38", "Theorem III.8: classifier vs exhaustive analysis", thm38)
	register("prop312", "Proposition III.12: the A_w index invariant", prop312)
	register("rounds", "Corollary III.14 / Proposition III.15: round optimality", rounds)
	register("almostfair", "Corollary IV.1: A_{b^ω} equals the intuitive algorithm", almostfair)
	register("minimal", "Section IV-C: minimal obstruction structure", minimalReport)
	register("chains", "Indistinguishability chain growth (impossibility shape)", chains)
}

// fig1 reproduces Figure 1: the index of every word of length ≤ 2.
func fig1() string {
	var b strings.Builder
	b.WriteString(header("Figure 1 — ind(w) for w ∈ Γ^≤2"))
	for r := 0; r <= 2; r++ {
		rows := [][]string{{"word", "ind"}}
		type wi struct {
			w omission.Word
			k int64
		}
		var ws []wi
		for _, w := range omission.AllWords(omission.Gamma, r) {
			k, _ := omission.IndexInt64(w)
			ws = append(ws, wi{w, k})
		}
		for k := int64(0); k < omission.Pow3Int64(r); k++ {
			for _, x := range ws {
				if x.k == k {
					rows = append(rows, []string{x.w.String(), fmt.Sprint(k)})
				}
			}
		}
		fmt.Fprintf(&b, "\nlength %d:\n%s", r, table(rows))
	}
	return b.String()
}

// indexReport verifies the bijection and the adjacency chain exhaustively.
func indexReport() string {
	var b strings.Builder
	b.WriteString(header("Lemma III.2 / III.4 — bijection and chain walk"))
	rows := [][]string{{"r", "|Γ^r|", "bijective", "chain 0→3^r−1 intact"}}
	for r := 0; r <= 9; r++ {
		n := omission.Pow3Int64(r)
		seen := make([]bool, n)
		ok := true
		for _, w := range omission.AllWords(omission.Gamma, r) {
			k, err := omission.IndexInt64(w)
			if err != nil || k < 0 || k >= n || seen[k] {
				ok = false
				break
			}
			seen[k] = true
		}
		chainOK := true
		w := omission.Uniform(omission.LossBlack, r)
		for k := int64(0); k < n-1; k++ {
			next, good := omission.AdjacentWord(w)
			if !good {
				chainOK = false
				break
			}
			w = next
		}
		if _, more := omission.AdjacentWord(w); more {
			chainOK = false
		}
		rows = append(rows, []string{fmt.Sprint(r), fmt.Sprint(n), fmt.Sprint(ok), fmt.Sprint(chainOK)})
	}
	b.WriteString(table(rows))
	return b.String()
}

// envs classifies the seven environments and reports paper-expected vs
// computed values.
func envs() string {
	var b strings.Builder
	b.WriteString(header("Section II-A2 / IV-A — the seven environments"))
	rows := [][]string{{"#", "scheme", "description", "solvable", "condition", "rounds"}}
	for i, s := range scheme.SevenEnvironments() {
		res, err := classify.Classify(s)
		solvable, cond, rnds := "?", "-", "-"
		if err == nil {
			solvable = fmt.Sprint(res.Solvable)
			if res.Solvable {
				cond = res.WitnessCondition.String()
				if res.MinRounds == classify.Unbounded {
					rnds = "unbounded"
				} else {
					rnds = fmt.Sprint(res.MinRounds)
				}
			} else {
				cond = "obstruction"
				rnds = "∞"
			}
		} else {
			// S2 (over Σ): decided by monotonicity only.
			solvable = "false"
			cond = "obstruction (⊇ Γ^ω)"
			rnds = "∞"
		}
		rows = append(rows, []string{fmt.Sprint(i + 1), s.Name(), s.Description(), solvable, cond, rnds})
	}
	b.WriteString(table(rows))
	b.WriteString("\npaper (Section IV-A): S0, TW, TB solvable in 1 round; C1, S1 in exactly 2; R1, S2 obstructions.\n")
	return b.String()
}

// thm38 cross-validates the Theorem III.8 decision procedure against the
// exhaustive bounded-round chain analysis on a corpus of random schemes.
func thm38() string {
	var b strings.Builder
	b.WriteString(header("Theorem III.8 — classifier vs exhaustive chain analysis"))
	rng := rand.New(rand.NewSource(2011))
	const trials = 60
	const maxR = 4
	agree, solvable, obstructions := 0, 0, 0
	witnessOK := 0
	for i := 0; i < trials; i++ {
		s := scheme.Random(rng, 1+rng.Intn(4))
		res, err := classify.Classify(s)
		if err != nil {
			continue
		}
		good := true
		for r := 0; r <= maxR; r++ {
			want := res.Solvable && res.MinRounds != classify.Unbounded && res.MinRounds <= r
			if chainSolvableAt(s, r) != want {
				good = false
			}
		}
		if good {
			agree++
		}
		if res.Solvable {
			solvable++
			if res.HasWitness && !s.Contains(res.Witness) {
				witnessOK++
			}
		} else {
			obstructions++
		}
	}
	rows := [][]string{
		{"metric", "value"},
		{"random schemes", fmt.Sprint(trials)},
		{"solvable / obstruction", fmt.Sprintf("%d / %d", solvable, obstructions)},
		{"chain-vs-classifier agreement (horizons 0..4)", fmt.Sprintf("%d/%d", agree, trials)},
		{"witnesses verified outside their scheme", fmt.Sprintf("%d/%d", witnessOK, solvable)},
	}
	b.WriteString(table(rows))
	return b.String()
}

// prop312 validates the A_w invariant over a large randomized corpus.
func prop312() string {
	var b strings.Builder
	b.WriteString(header("Proposition III.12 — A_w index invariant"))
	rng := rand.New(rand.NewSource(7))
	type cfg struct {
		s       *scheme.Scheme
		witness omission.Scenario
	}
	cfgs := []cfg{
		{scheme.AlmostFair(), omission.MustScenario("(b)")},
		{scheme.C1(), omission.MustScenario("(wb)")},
		{scheme.S1(), omission.MustScenario("(wb)")},
		{scheme.Fair(), omission.MustScenario("(w)")},
	}
	runs, rounds, violations := 0, 0, 0
	for _, c := range cfgs {
		for trial := 0; trial < 50; trial++ {
			sc, ok := c.s.SampleScenario(rng, rng.Intn(8))
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				tr, invariantOK := runWithInvariant(c.witness, inputs, sc, 300)
				runs++
				rounds += tr.Rounds
				if !invariantOK || !sim.Check(tr).OK() {
					violations++
				}
			}
		}
	}
	rows := [][]string{
		{"metric", "value"},
		{"executions", fmt.Sprint(runs)},
		{"total rounds simulated", fmt.Sprint(rounds)},
		{"invariant/property violations", fmt.Sprint(violations)},
	}
	b.WriteString(table(rows))
	return b.String()
}

var one = big.NewInt(1)

// runWithInvariant mirrors the kernel loop, checking Prop. III.12 while
// both processes are alive.
func runWithInvariant(witness omission.Source, inputs [2]sim.Value, sc omission.Source, maxRounds int) (sim.Trace, bool) {
	white, black := consensus.NewAW(witness), consensus.NewAW(witness)
	white.Init(sim.White, inputs[0])
	black.Init(sim.Black, inputs[1])
	tr := sim.Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}, Decisions: [2]sim.Value{sim.None, sim.None}}
	vInd := omission.NewIndexTracker()
	okAll := true
	for r := 1; r <= maxRounds; r++ {
		letter := sc.At(r - 1)
		tr.Played = append(tr.Played, letter)
		tr.Rounds = r
		wMsg, wOK := white.Send(r)
		bMsg, bOK := black.Send(r)
		var toW, toB sim.Message
		if bOK && !letter.LostBlack() {
			toW = bMsg
		}
		if wOK && !letter.LostWhite() {
			toB = wMsg
		}
		if wOK {
			white.Receive(r, toW)
		}
		if bOK {
			black.Receive(r, toB)
		}
		vInd.Step(letter)
		if !white.Halted() && !black.Halted() {
			iw, ib := white.Index(), black.Index()
			d := ib.Sub(ib, iw)
			if d.CmpAbs(one) != 0 {
				okAll = false
			}
			wantSign := 1
			if vInd.Parity() == 1 {
				wantSign = -1
			}
			if d.Sign() != wantSign {
				okAll = false
			}
		}
		done := true
		for i, p := range []*consensus.AW{white, black} {
			if tr.DecisionRound[i] < 0 {
				if v, ok := p.Decision(); ok {
					tr.Decisions[i] = v
					tr.DecisionRound[i] = r
				} else {
					done = false
				}
			}
		}
		if done {
			return tr, okAll
		}
	}
	tr.TimedOut = true
	return tr, okAll
}

// rounds reproduces the round-optimality results: bounded A_w meets the
// Corollary III.14 lower bound exactly.
func rounds() string {
	var b strings.Builder
	b.WriteString(header("Corollary III.14 / Proposition III.15 — round optimality"))
	rows := [][]string{{"scheme", "p (lower bound)", "worst observed", "all runs ≤ p", "paper"}}
	cases := []struct {
		s     *scheme.Scheme
		paper string
	}{
		{scheme.S0(), "1"},
		{scheme.TWhite(), "1"},
		{scheme.TBlack(), "1"},
		{scheme.C1(), "2"},
		{scheme.S1(), "2"},
	}
	for _, c := range cases {
		res, err := classify.Classify(c.s)
		if err != nil {
			continue
		}
		witness := consensus.BoundedWitness(res.MinRoundsWitness)
		worst, within := 0, true
		for _, prefix := range c.s.AllPrefixes(res.MinRounds) {
			sc, ok := c.s.ExtendToScenario(prefix)
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				w := consensus.NewBoundedAW(witness, res.MinRounds)
				bl := consensus.NewBoundedAW(witness, res.MinRounds)
				tr := sim.RunScenario(w, bl, inputs, sc, res.MinRounds+3)
				for _, dr := range tr.DecisionRound {
					if dr > worst {
						worst = dr
					}
					if dr > res.MinRounds {
						within = false
					}
				}
			}
		}
		rows = append(rows, []string{c.s.Name(), fmt.Sprint(res.MinRounds), fmt.Sprint(worst), fmt.Sprint(within), c.paper})
	}
	b.WriteString(table(rows))
	return b.String()
}

// almostfair measures the trace equivalence of Corollary IV.1.
func almostfair() string {
	var b strings.Builder
	b.WriteString(header("Corollary IV.1 — A_{b^ω} ≡ intuitive algorithm on F̃ = Γ^ω \\ {(b)^ω}"))
	witness := omission.MustScenario("(b)")
	total, equal, consensusOK := 0, 0, 0
	for r := 0; r <= 6; r++ {
		for _, w := range omission.AllWords(omission.Gamma, r) {
			sc := omission.UPWord(w, omission.MustWord("."))
			for _, inputs := range sim.AllInputs() {
				a := sim.RunScenario(consensus.NewAW(witness), consensus.NewAW(witness), inputs, sc, 200)
				c := sim.RunScenario(&consensus.Intuitive{}, &consensus.Intuitive{}, inputs, sc, 200)
				total++
				if a.Decisions == c.Decisions && a.DecisionRound == c.DecisionRound && a.Rounds == c.Rounds {
					equal++
				}
				if sim.Check(a).OK() {
					consensusOK++
				}
			}
		}
	}
	rows := [][]string{
		{"metric", "value"},
		{"scenarios × inputs", fmt.Sprint(total)},
		{"identical outcomes", fmt.Sprint(equal)},
		{"consensus satisfied", fmt.Sprint(consensusOK)},
	}
	b.WriteString(table(rows))
	return b.String()
}

// chains reports the chain growth per horizon: the structural shape of the
// impossibility (single path of length 3^r), together with the protocol
// complex of the paper's topological outlook — for Γ^ω it stays a single
// connected component at every horizon.
func chains() string {
	var b strings.Builder
	b.WriteString(header("Indistinguishability chains — Γ^r is a single path of 3^r words"))
	rows := [][]string{{"r", "words", "single path", "Γ^ω solvable at r", "complex V", "complex E", "components"}}
	for r := 1; r <= 7; r++ {
		rep := chain.VerifyChainStructure(r)
		solvable := chainSolvableAt(scheme.R1(), r)
		cx := chain.ProtocolComplex(scheme.R1(), r)
		rows = append(rows, []string{fmt.Sprint(r), fmt.Sprint(rep.Words), fmt.Sprint(rep.IsPath), fmt.Sprint(solvable),
			fmt.Sprint(cx.Vertices), fmt.Sprint(cx.Edges), fmt.Sprint(cx.Components)})
	}
	b.WriteString(table(rows))
	b.WriteString("\nthe protocol complex of Γ^ω is connected at every horizon — the topological\nform of the impossibility; a solvable scheme's complex splits at its optimal\nhorizon (e.g. S1 at r = 2).\n")
	return b.String()
}
