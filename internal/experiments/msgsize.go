package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func init() {
	register("msgsize", "Ablation: A_w message growth vs synthesized program size", msgsize)
}

// msgsize contrasts the two ways this repository can solve a scheme:
// the uniform algorithm A_w sends one integer whose bit length grows
// linearly (≈ r·log₂3 per round), while the synthesized table-driven
// programs grow with the configuration space of the horizon.
func msgsize() string {
	var b strings.Builder
	b.WriteString(header("A_w message bits per round vs synthesized program size"))

	// A_w bit growth while tracking its excluded scenario: with witness
	// (w)^ω the indices climb like 3^r (the (b)^ω witness would park them
	// at the bottom of the range — indices 0 and 1 — which is its own
	// kind of succinctness).
	witness := omission.MustScenario("(w)")
	j := 14
	sc := omission.UPWord(omission.Uniform(omission.LossWhite, j), omission.MustWord("."))
	_, infos := consensus.TraceAW(witness, [2]sim.Value{0, 1}, sc, j+5)
	rows := [][]string{{"round", "white msg bits", "black msg bits", "≈ r·log2(3)"}}
	for _, ri := range infos {
		if ri.Round%2 == 1 || ri.Round > j {
			rows = append(rows, []string{fmt.Sprint(ri.Round), fmt.Sprint(ri.BitsWhite),
				fmt.Sprint(ri.BitsBlack), fmt.Sprintf("%.1f", float64(ri.Round)*1.585)})
		}
	}
	b.WriteString(table(rows))

	// Synthesized tables per horizon on the all-losses budget scheme
	// (solvable at horizon k+1).
	b.WriteString("\nsynthesized program size (scheme K_k at its optimal horizon k+1):\n")
	rows = [][]string{{"k", "horizon", "view transitions", "decision entries"}}
	for k := 0; k <= 4; k++ {
		s := scheme.AtMostKLosses(k)
		tr, dec, ok := chain.SynthesisStats(s, k+1)
		if !ok {
			continue
		}
		rows = append(rows, []string{fmt.Sprint(k), fmt.Sprint(k + 1), fmt.Sprint(tr), fmt.Sprint(dec)})
	}
	b.WriteString(table(rows))
	b.WriteString("\nshape: A_w stays succinct at any horizon (linear bits); synthesis pays with\ntables that grow with the scheme's configuration space.\n")
	return b.String()
}
