package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/graph"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
	"repro/internal/obstruction"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"

	"repro/internal/classify"
)

func init() {
	register("network", "Theorem V.1: consensus on G with f losses/round iff f < c(G)", network)
	register("gammac", "Γ_C reduction (Algorithms 2/3) and Algorithm 4", gammaC)
}

func netZoo() []*graph.Graph {
	return []*graph.Graph{
		graph.Cycle(5),
		graph.Path(4),
		graph.Complete(5),
		graph.Grid(3, 2),
		graph.Hypercube(3),
		graph.Barbell(3, 1),
		graph.Barbell(4, 2),
		graph.Barbell(5, 3),
		graph.Theta(3, 3),
		graph.Wheel(6),
		graph.Star(5),
		graph.Petersen(),
		graph.BinaryTree(7),
	}
}

// network sweeps f over the zoo: flooding must succeed for every f < c(G)
// and the Γ_C adversary must break agreement at f = c(G). The "open" column
// marks graphs in the previously-open Santoro–Widmayer regime
// c(G) ≤ f < deg(G) that Theorem V.1 settles.
func network() string {
	var b strings.Builder
	b.WriteString(header("Theorem V.1 — solvable iff f < c(G)"))
	rows := [][]string{{"graph", "n", "m", "deg", "c(G)", "flood ok (f<c)", "violated at f=c", "open regime f"}}
	rng := rand.New(rand.NewSource(5))
	for _, g := range netZoo() {
		c := g.EdgeConnectivity()
		deg := g.MinDegree()
		cut, _ := g.MinCut()

		floodOK := true
		for f := 0; f < c; f++ {
			for trial := 0; trial < 4; trial++ {
				in := make([]netsim.Value, g.N())
				for i := range in {
					in[i] = netsim.Value(rng.Intn(2))
				}
				advs := []netsim.Adversary{
					netsim.RandomF{F: f, Rng: rand.New(rand.NewSource(int64(trial)))},
					netsim.TargetedCut{Cut: cut, F: f},
				}
				for _, adv := range advs {
					tr := netsim.Run(g, netconsensus.NewFloodNodes(g), in, adv, g.N()+2)
					if !netsim.Check(tr).OK() {
						floodOK = false
					}
				}
			}
		}

		in := make([]netsim.Value, g.N())
		for _, v := range cut.SideB {
			in[v] = 1
		}
		adv := netsim.CutScenario{Cut: cut, Src: omission.Constant(omission.LossWhite)}
		tr := netsim.Run(g, netconsensus.NewFloodNodes(g), in, adv, g.N()+2)
		violated := !netsim.Check(tr).Agreement

		open := "-"
		if c < deg {
			open = fmt.Sprintf("%d..%d", c, deg-1)
		}
		rows = append(rows, []string{
			g.Name(), fmt.Sprint(g.N()), fmt.Sprint(g.NumEdges()), fmt.Sprint(deg), fmt.Sprint(c),
			fmt.Sprint(floodOK), fmt.Sprint(violated), open,
		})
	}
	b.WriteString(table(rows))
	b.WriteString("\npaper: solvable iff f < c(G); the 'open regime' rows are the c(G) ≤ f < deg(G)\nquestion left open by Santoro–Widmayer, settled as unsolvable.\n")
	return b.String()
}

// gammaC demonstrates the reduction mechanics: (1) the two-process lifting
// of flooding matches the real network run under ρ; (2) an exhaustive
// search finds a violating two-process scenario and its network replay
// violates consensus; (3) Algorithm 4 solves the network under the
// solvable sub-scheme of Γ_C.
func gammaC() string {
	var b strings.Builder
	b.WriteString(header("Γ_C reduction — Algorithms 2/3/4 on barbell(3,1)"))
	g := graph.Barbell(3, 1)
	cut, _ := g.MinCut()
	mk := func() netsim.Node { return &netconsensus.FloodMin{} }
	horizon := g.N() - 1

	// (1) Emulation consistency.
	rng := rand.New(rand.NewSource(9))
	match, totalRuns := 0, 0
	for trial := 0; trial < 30; trial++ {
		prefix := make(omission.Word, horizon)
		for i := range prefix {
			prefix[i] = omission.Gamma[rng.Intn(3)]
		}
		src := omission.UPWord(prefix, omission.MustWord("."))
		inputs := [2]sim.Value{sim.Value(rng.Intn(2)), sim.Value(rng.Intn(2))}
		two := sim.RunScenario(netconsensus.NewEmulation(g, cut, mk), netconsensus.NewEmulation(g, cut, mk), inputs, src, horizon+2)
		netIn := make([]netsim.Value, g.N())
		for _, v := range cut.SideA {
			netIn[v] = inputs[0]
		}
		for _, v := range cut.SideB {
			netIn[v] = inputs[1]
		}
		net := netsim.Run(g, netconsensus.NewFloodNodes(g), netIn, netsim.CutScenario{Cut: cut, Src: src}, horizon+2)
		totalRuns++
		ok := true
		for _, v := range cut.SideA {
			if net.Decisions[v] != two.Decisions[0] {
				ok = false
			}
		}
		for _, v := range cut.SideB {
			if net.Decisions[v] != two.Decisions[1] {
				ok = false
			}
		}
		if ok {
			match++
		}
	}
	fmt.Fprintf(&b, "emulation (Algorithms 2/3) vs network: %d/%d identical decision profiles\n", match, totalRuns)

	// (2) Reduction-found violation.
	found := false
	var badScenario omission.Scenario
	var badInputs [2]sim.Value
search:
	for _, w := range omission.AllWords(omission.Gamma, horizon) {
		src := omission.UPWord(w, omission.MustWord("."))
		for _, inputs := range sim.AllInputs() {
			tr := sim.RunScenario(netconsensus.NewEmulation(g, cut, mk), netconsensus.NewEmulation(g, cut, mk), inputs, src, horizon+2)
			if !sim.Check(tr).OK() {
				badScenario, badInputs, found = src, inputs, true
				break search
			}
		}
	}
	if found {
		netIn := make([]netsim.Value, g.N())
		for _, v := range cut.SideA {
			netIn[v] = badInputs[0]
		}
		for _, v := range cut.SideB {
			netIn[v] = badInputs[1]
		}
		tr := netsim.Run(g, netconsensus.NewFloodNodes(g), netIn, netsim.CutScenario{Cut: cut, Src: badScenario}, horizon+2)
		rep := netsim.Check(tr)
		fmt.Fprintf(&b, "violating scenario found: %s inputs %v; network replay violates consensus: %v\n",
			badScenario, badInputs, !rep.OK())
	} else {
		b.WriteString("ERROR: no violating scenario found\n")
	}

	// (3) Algorithm 4.
	okRuns, runs := 0, 0
	witness := omission.Constant(omission.LossBlack)
	for trial := 0; trial < 30; trial++ {
		prefix := make(omission.Word, rng.Intn(6))
		for i := range prefix {
			prefix[i] = omission.Gamma[rng.Intn(3)]
		}
		src := omission.UPWord(prefix, omission.MustWord("."))
		in := make([]netsim.Value, g.N())
		for i := range in {
			in[i] = netsim.Value(rng.Intn(2))
		}
		tr := netsim.Run(g, netconsensus.NewCutTwoPhaseNodes(g, cut, witness), in, netsim.CutScenario{Cut: cut, Src: src}, 80)
		runs++
		if netsim.Check(tr).OK() {
			okRuns++
		}
	}
	fmt.Fprintf(&b, "Algorithm 4 under Γ_C \\ ρ⁻¹((b)^ω): %d/%d runs reach consensus\n", okRuns, runs)
	return b.String()
}

// minimalReport is the Section IV-C experiment: matching structure,
// decreasing obstructions, cover property.
func minimalReport() string {
	var b strings.Builder
	b.WriteString(header("Section IV-C — minimal obstruction structure"))

	rows := [][]string{{"prefix ≤", "unfair scenarios", "pairs", "lowers", "uppers", "constants"}}
	for k := 1; k <= 4; k++ {
		window := obstruction.UnfairWindow(k)
		pairs := obstruction.PairGraph(window)
		lower, upper, constant := 0, 0, 0
		for _, s := range window {
			switch obstruction.RoleOf(s) {
			case obstruction.RoleLower:
				lower++
			case obstruction.RoleUpper:
				upper++
			case obstruction.RoleConstant:
				constant++
			}
		}
		rows = append(rows, []string{fmt.Sprint(k), fmt.Sprint(len(window)), fmt.Sprint(len(pairs)),
			fmt.Sprint(lower), fmt.Sprint(upper), fmt.Sprint(constant)})
	}
	b.WriteString(table(rows))

	b.WriteString("\ndecreasing obstruction sequence L_0 ⊋ L_1 ⊋ L_2 (classifier verdicts):\n")
	seq := obstruction.DecreasingObstructions(2)
	rows = [][]string{{"scheme", "obstruction", "strictly smaller than predecessor"}}
	for i, l := range seq {
		res, err := classify.Classify(l)
		obst := err == nil && !res.Solvable
		smaller := "-"
		if i > 0 {
			sub, _ := scheme.SubsetOf(l, seq[i-1])
			super, _ := scheme.SubsetOf(seq[i-1], l)
			smaller = fmt.Sprint(sub && !super)
		}
		rows = append(rows, []string{l.Name(), fmt.Sprint(obst), smaller})
	}
	b.WriteString(table(rows))

	// Cover property of the canonical minimal obstruction.
	bad := 0
	pairs := obstruction.PairGraph(obstruction.UnfairWindow(4))
	for _, p := range pairs {
		if obstruction.InCanonicalMinimalObstruction(p.Lower) || !obstruction.InCanonicalMinimalObstruction(p.Upper) {
			bad++
		}
	}
	fmt.Fprintf(&b, "\ncanonical minimal obstruction cover property: %d/%d pairs have lower out / upper in\n",
		len(pairs)-bad, len(pairs))
	return b.String()
}
