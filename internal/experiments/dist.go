package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/heardof"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func init() {
	register("dist", "Performance figure: decision-round distribution of A_w under random members", dist)
	register("ho", "Extension: Heard-Of predicates as omission schemes", ho)
}

// dist samples member scenarios of each solvable named scheme and reports
// the distribution of A_w decision rounds — the repository's stand-in for
// a performance figure (the paper reports only worst-case bounds).
func dist() string {
	var b strings.Builder
	b.WriteString(header("A_w decision-round distribution (1000 sampled runs per scheme)"))
	rows := [][]string{{"scheme", "min", "p50", "p95", "max", "mean"}}
	rng := rand.New(rand.NewSource(20110516)) // IPDPS 2011 conference date
	for _, s := range []*scheme.Scheme{
		scheme.S0(), scheme.TWhite(), scheme.C1(), scheme.S1(),
		scheme.AtMostKLosses(2), scheme.Fair(), scheme.AlmostFair(),
	} {
		res, err := classify.Classify(s)
		if err != nil || !res.Solvable {
			continue
		}
		var rounds []int
		for i := 0; i < 250; i++ {
			sc, ok := s.SampleScenario(rng, rng.Intn(10))
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				var white, black sim.Process
				if res.MinRounds != classify.Unbounded {
					w := consensus.BoundedWitness(res.MinRoundsWitness)
					white, black = consensus.NewBoundedAW(w, res.MinRounds), consensus.NewBoundedAW(w, res.MinRounds)
				} else {
					white, black = consensus.NewAW(res.Witness), consensus.NewAW(res.Witness)
				}
				tr := sim.RunScenario(white, black, inputs, sc, 500)
				if !tr.TimedOut {
					rounds = append(rounds, tr.Rounds)
				}
			}
		}
		if len(rounds) == 0 {
			continue
		}
		sortInts(rounds)
		sum := 0
		for _, r := range rounds {
			sum += r
		}
		pct := func(p float64) int { return rounds[int(p*float64(len(rounds)-1))] }
		rows = append(rows, []string{
			s.Name(), fmt.Sprint(rounds[0]), fmt.Sprint(pct(0.5)), fmt.Sprint(pct(0.95)),
			fmt.Sprint(rounds[len(rounds)-1]), fmt.Sprintf("%.2f", float64(sum)/float64(len(rounds))),
		})
	}
	b.WriteString(table(rows))
	b.WriteString("\nshape: bounded schemes sit at their Cor. III.14 optimum; the unbounded ones\n(Fair, AlmostFair) have small typical rounds with a heavy tail driven by how\nlong the sampled scenario tracks the excluded one.\n")
	return b.String()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ho reports the Heard-Of bridge: classical communication predicates as
// omission schemes, with their classification.
func ho() string {
	var b strings.Builder
	b.WriteString(header("Heard-Of predicates (n = 2) as omission schemes"))
	rows := [][]string{{"predicate", "scheme equivalent", "verdict"}}

	kernel := heardof.NonemptyKernel()
	eq, _ := scheme.Equivalent(kernel, scheme.R1())
	verdict := "?"
	if res, err := classify.Classify(kernel); err == nil {
		if res.Solvable {
			verdict = "solvable"
		} else {
			verdict = "obstruction"
		}
	}
	rows = append(rows, []string{"nonempty kernel each round", fmt.Sprintf("Γ^ω (equivalence verified: %v)", eq), verdict})

	nosplit := heardof.NoSplit()
	eq2, _ := scheme.Equivalent(nosplit, kernel)
	rows = append(rows, []string{"no-split (HO sets intersect)", fmt.Sprintf("same as kernel for n=2: %v", eq2), verdict})

	eg := heardof.EventuallyGood()
	egVerdict := "Σ-scheme: Thm III.8 open; not bounded-round solvable (chain)"
	rows = append(rows, []string{"infinitely many all-hear-all rounds", eg.Description(), egVerdict})

	b.WriteString(table(rows))
	b.WriteString("\nletter ↔ HO-pair bijection: '.' ↔ ({w,b},{w,b}), 'w' ↔ ({w,b},{b}),\n'b' ↔ ({w},{w,b}), 'x' ↔ ({w},{b}); kernels: both/just-black/just-white/∅.\n")
	return b.String()
}
