package coordattack

import (
	"context"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Chaos-testing and hardened-execution layer (internal/chaos): seeded
// fault-injection campaigns over both simulation kernels, consensus and
// Proposition III.12 invariant watchdogs, counterexample shrinking, and
// panic-isolated, deadline-bounded runners.
type (
	// ChaosConfig parameterizes a two-process chaos campaign.
	ChaosConfig = chaos.Config
	// ChaosAlgorithm is an algorithm under chaos test.
	ChaosAlgorithm = chaos.Algorithm
	// NetChaosConfig parameterizes a network chaos campaign.
	NetChaosConfig = chaos.NetConfig
	// ChaosReport aggregates a campaign's outcome.
	ChaosReport = chaos.Report
	// ChaosViolation is one structured, seed-stamped failure.
	ChaosViolation = chaos.Violation
	// ChaosProperty names the guarantee a violation broke.
	ChaosProperty = chaos.Property
	// HardenedTrace is a two-process trace with crash/interrupt metadata.
	HardenedTrace = sim.HardenedTrace
	// NetHardenedTrace is a network trace with crash/interrupt metadata.
	NetHardenedTrace = netsim.HardenedTrace
)

// The violated properties a chaos watchdog can report.
const (
	ChaosPanic       = chaos.PropPanic
	ChaosDeadline    = chaos.PropDeadline
	ChaosAgreement   = chaos.PropAgreement
	ChaosValidity    = chaos.PropValidity
	ChaosTermination = chaos.PropTermination
	ChaosInvariant   = chaos.PropInvariant
)

// RunChaosCampaign executes seeded random two-process executions under
// scenarios sampled from the scheme, checking every trace with the
// consensus watchdog (and optionally the Proposition III.12 invariant);
// the first violation is minimized by the shrinker.
func RunChaosCampaign(cfg ChaosConfig) (*ChaosReport, error) { return chaos.RunCampaign(cfg) }

// RunChaosCampaignCtx is RunChaosCampaign under a campaign-wide context,
// re-checked between executions so a cancelled sweep aborts promptly
// with its partial report and ctx.Err().
func RunChaosCampaignCtx(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	return chaos.RunCampaignCtx(ctx, cfg)
}

// RunNetworkChaosCampaign executes seeded random network executions under
// randomly composed budget-respecting fault injectors.
func RunNetworkChaosCampaign(cfg NetChaosConfig) (*ChaosReport, error) {
	return chaos.RunNetworkCampaign(cfg)
}

// RunNetworkChaosCampaignCtx is RunNetworkChaosCampaign under a
// campaign-wide context, re-checked between executions.
func RunNetworkChaosCampaignCtx(ctx context.Context, cfg NetChaosConfig) (*ChaosReport, error) {
	return chaos.RunNetworkCampaignCtx(ctx, cfg)
}

// AWForScheme classifies the scheme and wraps A_w from its witness as the
// campaign subject.
func AWForScheme(s *Scheme) (ChaosAlgorithm, error) { return chaos.AWForScheme(s) }

// RunHardened is the panic-isolating, context-bounded two-process runner:
// a process that panics is crash-stopped with a diagnostic while its
// partner keeps executing, and ctx cancellation/deadline interrupts the
// run at the next round boundary.
func RunHardened(ctx context.Context, white, black Process, inputs [2]Value, src Source, maxRounds int) HardenedTrace {
	return sim.RunHardenedScenario(ctx, white, black, inputs, src, maxRounds)
}

// RunNetworkHardened is the hardened sequential network runner.
func RunNetworkHardened(ctx context.Context, g *Graph, nodes []Node, inputs []Value, adv NetAdversary, maxRounds int) NetHardenedTrace {
	return netsim.RunHardened(ctx, g, nodes, inputs, adv, maxRounds)
}

// RunNetworkConcurrentHardened is the hardened goroutine/CSP network
// runner: one goroutine per node, each isolated so a panicking node fails
// only its own trace and never leaks its server goroutine.
func RunNetworkConcurrentHardened(ctx context.Context, g *Graph, nodes []Node, inputs []Value, adv NetAdversary, maxRounds int) NetHardenedTrace {
	return netsim.RunGoroutinesHardened(ctx, g, nodes, inputs, adv, maxRounds)
}

// DeriveSeed derives the per-execution seed from a campaign master seed —
// the stamp that makes every chaos violation independently replayable.
func DeriveSeed(master int64, execution int) int64 { return chaos.DeriveSeed(master, execution) }

// NewSeededRand returns the deterministic random source used throughout
// the chaos layer; all randomness in the library is injected from sources
// like this one, never drawn from the global math/rand state.
func NewSeededRand(seed int64) *rand.Rand { return chaos.NewRand(seed) }

// Fault injectors and combinators for network campaigns.
type (
	// CrashInjector silences a node's outgoing messages from a round on.
	CrashInjector = chaos.Crash
	// IsolateInjector drops a node's incoming messages from a round on.
	IsolateInjector = chaos.Isolate
	// BlackoutInjector drops every message in a round window.
	BlackoutInjector = chaos.Blackout
	// RandomDropsInjector drops up to F random messages per round.
	RandomDropsInjector = chaos.RandomDrops
	// BurstInjector applies an inner adversary on a periodic phase.
	BurstInjector = chaos.Burst
	// UnionInjector drops a message iff any member does.
	UnionInjector = chaos.Union
	// BudgetCapInjector bounds an inner adversary's total and per-round
	// drops.
	BudgetCapInjector = chaos.BudgetCap
	// StagedInjector plays adversaries in sequence (see chaos.NewSeq).
	StagedInjector = chaos.Seq
)
