// Command capbench load-tests a capserved node or coordinator cluster:
// an open-loop arrival process at a target RPS over mixed query classes
// (classification, solvability, network solvability, and cache-busting
// "heavy" automata), reporting p50/p95/p99 latency, shed rate, and
// hedge/failover rates.
//
// Usage:
//
//	capbench                              # self-contained 3-node cluster
//	capbench -rps 300 -duration 5s -out BENCH_7.json -p99-bar 2
//	capbench -base http://127.0.0.1:8322  # drive an external target
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capbench(os.Args[1:], os.Stdout, os.Stderr))
}
