// Command capchaos runs seeded chaos campaigns against the simulators:
// randomized fault injection with consensus and knowledge-invariant
// watchdogs, panic isolation, wall-clock deadlines, and counterexample
// shrinking. Exit status 0 means the campaign was clean; 1 means it
// found (and minimized) violations, printed as seed-stamped reports.
//
// Usage:
//
//	capchaos -scheme S1 -executions 10000 -seed 7
//	capchaos -scheme C1 -executions 2000 -deadline 5s
//	capchaos -net -graph petersen -executions 500 -concurrent
//	capchaos -net -graph cycle -n 6 -f 1 -seed 42
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capchaos(os.Args[1:], os.Stdout, os.Stderr))
}
