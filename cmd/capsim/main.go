// Command capsim runs a two-process Coordinated Attack simulation: it
// classifies the scheme, instantiates the algorithm A_w from the verdict,
// and executes it under a chosen scenario (or sampled member scenarios),
// printing the trace and the consensus-property check.
//
// Usage:
//
//	capsim -scheme AlmostFair -scenario "w.(.)" -inputs 0,1
//	capsim -scheme C1 -sample 5 -seed 42
//	capsim -scheme S1 -scenario "(.b)" -concurrent
//	capsim -scheme AlmostFair -scenario "bbb.(.)" -verbose
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capsim(os.Args[1:], os.Stdout, os.Stderr))
}
