// Command capserved serves the analysis surface (scheme classification,
// scenario index/unindex, bounded-round solvability, chaos campaigns)
// as a resilient HTTP/JSON service: per-request deadlines propagated
// into the engines, bounded admission queues with 429 load shedding,
// singleflight + LRU result caching, a circuit breaker around the
// expensive paths, panic isolation with diagnostic IDs, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	capserved -addr 127.0.0.1:8321
//	capserved -addr :0 -timeout 10s -drain 5s
//	curl -s localhost:8321/healthz
//	curl -s -X POST localhost:8321/v1/solvable -d '{"scheme":"S1","horizon":3}'
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capserved(os.Args[1:], os.Stdout, os.Stderr))
}
