// Command capsolve classifies an omission scheme for the Coordinated
// Attack Problem (Theorem III.8): solvable or obstruction, with witnesses
// and the exact round complexity.
//
// Usage:
//
//	capsolve -scheme S1
//	capsolve -scheme R1 -minus "w(b)" -minus ".(b)"
//	capsolve -expr "[.w]^w | [.b]^w" -json
//	capsolve -scheme BX2 -horizon 5
//	capsolve -list
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capsolve(os.Args[1:], os.Stdout, os.Stderr))
}
