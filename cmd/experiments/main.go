// Command experiments regenerates every figure- and table-like result of
// the paper. Run with -run <name> for one experiment or -all for the full
// report (the contents of EXPERIMENTS.md's measured sections).
//
// Usage:
//
//	experiments -list
//	experiments -run fig1
//	experiments -all
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Experiments(os.Args[1:], os.Stdout, os.Stderr))
}
