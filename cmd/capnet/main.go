// Command capnet runs network consensus experiments (Section V): flooding
// under budgeted omissions, the Γ_C cut adversary, and Algorithm 4.
//
// Usage:
//
//	capnet -graph barbell -k 4 -bridges 2 -f 1
//	capnet -graph cycle -n 6 -f 2
//	capnet -graph custom -edges "0-1,1-2,2-0" -f 1 -adversary targeted
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Capnet(os.Args[1:], os.Stdout, os.Stderr))
}
