package coordattack_test

// One benchmark per experiment id of DESIGN.md (each figure/table-like
// result of the paper), plus the ablation benches for the design choices
// the repository makes (big.Int vs int64 index arithmetic, sequential vs
// goroutine round kernel, Edmonds–Karp vs Stoer–Wagner connectivity).

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	coordattack "repro"
	"repro/internal/chain"
	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/fullinfo"
	"repro/internal/graph"
	"repro/internal/nchain"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
	"repro/internal/obstruction"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// FIG1 — the index function (streaming computation over long words).
func BenchmarkFig1Index(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make(omission.Word, 256)
	for i := range w {
		w[i] = omission.Gamma[rng.Intn(3)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := omission.NewIndexTracker()
		for _, a := range w {
			t.Step(a)
		}
	}
}

// LEM-III2/III4 — bijection round trip at r = 12.
func BenchmarkIndexBijection(b *testing.B) {
	const r = 12
	k := omission.Pow3Int64(r) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := omission.UnIndexInt64(r, k)
		got, err := omission.IndexInt64(w)
		if err != nil || got != k {
			b.Fatal("round trip failed")
		}
	}
}

// TAB-ENV — classifying the seven environments.
func BenchmarkTabEnvClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range scheme.SevenEnvironments()[:6] { // S2 errors by design
			if _, err := classify.Classify(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// THM-III8 — the classifier on random DBA schemes.
func BenchmarkThm38Classifier(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	schemes := make([]*scheme.Scheme, 16)
	for i := range schemes {
		schemes[i] = scheme.Random(rng, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.Classify(schemes[i%len(schemes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// THM-III8 — the special-pair product automaton in isolation.
func BenchmarkThm38SpecialPair(b *testing.B) {
	l := scheme.Minus("pairless", scheme.R1(),
		omission.MustScenario("w(b)"), omission.MustScenario(".(b)"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := classify.Classify(l)
		if err != nil || !res.PairMissing {
			b.Fatal("expected pair witness")
		}
	}
}

// PROP-III12 — a full A_w execution per iteration.
func BenchmarkPropIII12AW(b *testing.B) {
	witness := omission.MustScenario("(b)")
	sc := omission.MustScenario("bbbbbbbbw(.)") // 9 tracked rounds, then decide
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := sim.RunScenario(consensus.NewAW(witness), consensus.NewAW(witness),
			[2]sim.Value{0, 1}, sc, 100)
		if tr.TimedOut {
			b.Fatal("timed out")
		}
	}
}

// COR-III14 — the exhaustive round-optimality sweep on S1.
func BenchmarkRoundOptimality(b *testing.B) {
	s := scheme.S1()
	res, err := classify.Classify(s)
	if err != nil {
		b.Fatal(err)
	}
	witness := consensus.BoundedWitness(res.MinRoundsWitness)
	prefixes := s.AllPrefixes(res.MinRounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range prefixes {
			sc, _ := s.ExtendToScenario(p)
			w := consensus.NewBoundedAW(witness, res.MinRounds)
			bl := consensus.NewBoundedAW(witness, res.MinRounds)
			if tr := sim.RunScenario(w, bl, [2]sim.Value{0, 1}, sc, 5); tr.TimedOut {
				b.Fatal("timeout")
			}
		}
	}
}

// COR-IV1 — the intuitive algorithm against A_{b^ω}.
func BenchmarkAlmostFair(b *testing.B) {
	sc := omission.MustScenario("wwbwb(.)")
	witness := omission.MustScenario("(b)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sim.RunScenario(consensus.NewAW(witness), consensus.NewAW(witness), [2]sim.Value{0, 1}, sc, 50)
		c := sim.RunScenario(&consensus.Intuitive{}, &consensus.Intuitive{}, [2]sim.Value{0, 1}, sc, 50)
		if a.Decisions != c.Decisions {
			b.Fatal("divergence")
		}
	}
}

// SEC-IVC — building the special-pair matching window.
func BenchmarkSpecialPairGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		window := obstruction.UnfairWindow(4)
		if len(obstruction.PairGraph(window)) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// Impossibility shape — full-information chain analysis, by horizon
// (default engine configuration).
func BenchmarkChains(b *testing.B) {
	ctx := context.Background()
	for _, r := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			s := scheme.R1()
			for i := 0; i < b.N; i++ {
				rep, err := chain.Analyze(ctx, chain.Request{Scheme: s, Horizon: r})
				if err != nil || rep.Solvable {
					b.Fatal("Γ^ω solvable?!")
				}
			}
		})
	}
}

// Engine ablation — the sequential reference vs the streaming engine
// with a full worker pool, on the same horizons. Compare:
//
//	go test -bench 'BenchmarkChains(Sequential|Parallel)' -run '^$' .
func BenchmarkChainsSequential(b *testing.B) {
	ctx := context.Background()
	for _, r := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			s := scheme.R1()
			for i := 0; i < b.N; i++ {
				rep, err := chain.Analyze(ctx, chain.Request{Scheme: s, Horizon: r, Sequential: true})
				if err != nil || rep.Solvable {
					b.Fatal("Γ^ω solvable?!")
				}
			}
		})
	}
}

func BenchmarkChainsParallel(b *testing.B) {
	ctx := context.Background()
	for _, r := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			s := scheme.R1()
			opt := fullinfo.Options{Parallel: true, Workers: runtime.GOMAXPROCS(0)}
			for i := 0; i < b.N; i++ {
				rep, err := chain.Analyze(ctx, chain.Request{Scheme: s, Horizon: r, Engine: &opt})
				if err != nil || rep.Solvable {
					b.Fatal("Γ^ω solvable?!")
				}
			}
		})
	}
}

// Tentpole ablation — MinRounds search as per-horizon engine restarts
// (the pre-incremental MinRoundsSearch strategy: a fresh interner, walk,
// and worker pool at every horizon) versus one incremental engine whose
// horizon-r frontier seeds horizon r+1. R1 is never solvable, so both
// sides sweep the full 0..maxR range. BENCH_4.json records the speedup.
func BenchmarkMinRoundsIncrementalVsRestart(b *testing.B) {
	ctx := context.Background()
	const maxR = 8
	s := scheme.R1()
	b.Run("restart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r <= maxR; r++ {
				rep, err := chain.Analyze(ctx, chain.Request{Scheme: s, Horizon: r, VerdictOnly: true})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Solvable {
					b.Fatal("Γ^ω solvable?!")
				}
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := chain.Analyze(ctx, chain.Request{
				Scheme: s, Horizon: maxR, MinRounds: true, VerdictOnly: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Found {
				b.Fatal("Γ^ω solvable?!")
			}
		}
	})
}

// THM-V1 — flooding consensus, swept over network size.
func BenchmarkNetworkFlood(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		g := graph.Cycle(n)
		in := make([]netsim.Value, n)
		in[n/2] = 1
		b.Run(fmt.Sprintf("cycle-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := netsim.Run(g, netconsensus.NewFloodNodes(g), in,
					netsim.TargetedCut{Cut: mustCut(g), F: 1}, n+2)
				if !netsim.Check(tr).OK() {
					b.Fatal("flood failed")
				}
			}
		})
	}
}

// THM-V1 — edge connectivity via max-flow.
func BenchmarkConnectivity(b *testing.B) {
	g := graph.Hypercube(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.EdgeConnectivity() != 5 {
			b.Fatal("λ(Q5) = 5")
		}
	}
}

// PROP-V2 — the Algorithms 2/3 two-process lifting of flooding.
func BenchmarkCutEmulation(b *testing.B) {
	g := graph.Barbell(3, 1)
	cut := mustCut(g)
	mk := func() netsim.Node { return &netconsensus.FloodMin{} }
	src := omission.MustScenario("w.b(.)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := sim.RunScenario(netconsensus.NewEmulation(g, cut, mk),
			netconsensus.NewEmulation(g, cut, mk), [2]sim.Value{0, 1}, src, g.N()+2)
		if tr.TimedOut {
			b.Fatal("timeout")
		}
	}
}

// ABL — index arithmetic: exact big.Int vs bounded int64.
func BenchmarkAblationIndexBigInt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := omission.NewIndexTracker()
		for r := 0; r < omission.MaxInt64Rounds; r++ {
			t.Step(omission.Gamma[r%3])
		}
	}
}

func BenchmarkAblationIndexInt64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var t omission.Int64Tracker
		for r := 0; r < omission.MaxInt64Rounds; r++ {
			t.Step(omission.Gamma[r%3])
		}
	}
}

// ABL — round kernel: sequential loop vs goroutine/CSP servers.
func BenchmarkAblationRunnerSequential(b *testing.B) {
	sc := omission.MustScenario("bbbbbbbbbbw(.)")
	witness := omission.MustScenario("(b)")
	for i := 0; i < b.N; i++ {
		sim.RunScenario(consensus.NewAW(witness), consensus.NewAW(witness), [2]sim.Value{0, 1}, sc, 50)
	}
}

func BenchmarkAblationRunnerGoroutine(b *testing.B) {
	sc := omission.MustScenario("bbbbbbbbbbw(.)")
	witness := omission.MustScenario("(b)")
	for i := 0; i < b.N; i++ {
		sim.RunGoroutinesScenario(consensus.NewAW(witness), consensus.NewAW(witness), [2]sim.Value{0, 1}, sc, 50)
	}
}

// ABL — connectivity algorithms: Edmonds–Karp vs Stoer–Wagner.
func BenchmarkAblationEdmondsKarp(b *testing.B) {
	g := graph.Grid(5, 5)
	for i := 0; i < b.N; i++ {
		if g.EdgeConnectivity() != 2 {
			b.Fatal("λ(grid) = 2")
		}
	}
}

func BenchmarkAblationStoerWagner(b *testing.B) {
	g := graph.Grid(5, 5)
	for i := 0; i < b.N; i++ {
		if g.StoerWagner() != 2 {
			b.Fatal("λ(grid) = 2")
		}
	}
}

// Facade sanity for the benches file.
func BenchmarkClassifyFacade(b *testing.B) {
	s := coordattack.AlmostFair()
	for i := 0; i < b.N; i++ {
		if v, err := coordattack.Classify(s); err != nil || !v.Solvable {
			b.Fatal("classification failed")
		}
	}
}

func mustCut(g *graph.Graph) graph.Cut {
	c, ok := g.MinCut()
	if !ok {
		panic("no cut")
	}
	return c
}

// EXT — DSL parsing throughput.
func BenchmarkParseScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Parse(`[.w]^w | [.b]^w & [.wb]^w \ {(b)}`); err != nil {
			b.Fatal(err)
		}
	}
}

// EXT-NPROC — the n-process analysis.
func BenchmarkNProcAnalyze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !nchainAnalyze(3, 1, 2) {
			b.Fatal("K3 f=1 solvable at 2")
		}
	}
}

func nchainAnalyze(n, f, r int) bool {
	rep, err := nchain.Analyze(context.Background(), nchain.Request{N: n, F: f, Horizon: r})
	if err != nil {
		panic(err)
	}
	return rep.Solvable
}

// Engine ablation — n-process analysis, sequential vs full worker pool.
func BenchmarkNProcAnalyzeSequential(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := nchain.Analyze(ctx, nchain.Request{N: 3, F: 1, Horizon: 2, Sequential: true})
		if err != nil || !rep.Solvable {
			b.Fatal("K3 f=1 solvable at 2")
		}
	}
}

func BenchmarkNProcAnalyzeParallel(b *testing.B) {
	ctx := context.Background()
	opt := fullinfo.Options{Parallel: true, Workers: runtime.GOMAXPROCS(0)}
	for i := 0; i < b.N; i++ {
		rep, err := nchain.Analyze(ctx, nchain.Request{N: 3, F: 1, Horizon: 2, Engine: &opt})
		if err != nil || !rep.Solvable {
			b.Fatal("K3 f=1 solvable at 2")
		}
	}
}

// EXT — synthesis compilation (runs on the engine's BuildGraph path).
func BenchmarkSynthesize(b *testing.B) {
	s := scheme.S1()
	for i := 0; i < b.N; i++ {
		if _, _, ok := chain.Synthesize(s, 2); !ok {
			b.Fatal("synthesis failed")
		}
	}
}

// Engine ablation — synthesis at a deeper horizon where the graph-build
// fan-out dominates; K3 is solvable exactly from horizon 4.
func BenchmarkSynthesizeParallel(b *testing.B) {
	s, err := scheme.ByName("K3")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, ok := chain.Synthesize(s, 4); !ok {
			b.Fatal("synthesis failed")
		}
	}
}

// ABL — network runners: sequential vs goroutine-per-node.
func BenchmarkAblationNetSequential(b *testing.B) {
	g := graph.Cycle(12)
	in := make([]netsim.Value, g.N())
	for i := 0; i < b.N; i++ {
		netsim.Run(g, netconsensus.NewFloodNodes(g), in, netsim.NoDrops{}, g.N())
	}
}

func BenchmarkAblationNetGoroutine(b *testing.B) {
	g := graph.Cycle(12)
	in := make([]netsim.Value, g.N())
	for i := 0; i < b.N; i++ {
		netsim.RunGoroutines(g, netconsensus.NewFloodNodes(g), in, netsim.NoDrops{}, g.N())
	}
}

// EXT — vertex connectivity (node-splitting max-flow).
func BenchmarkVertexConnectivity(b *testing.B) {
	g := graph.Petersen()
	for i := 0; i < b.N; i++ {
		if g.VertexConnectivity() != 3 {
			b.Fatal("κ(Petersen) = 3")
		}
	}
}
